//! Multi-round (iterated one-round) evaluation.
//!
//! The paper studies parallel-correctness of a *single* communication round,
//! but its Massively Parallel Communication setting is inherently
//! multi-round: evaluate, reshuffle the outputs, evaluate again.
//! [`MultiRoundEngine`] simulates that loop on top of
//! [`OneRoundEngine`]: each round reshuffles the current instance under the
//! round's policy (a [`RoundSchedule`] may change policies between rounds),
//! evaluates locally at every node, and merges the round's outputs back into
//! the next round's instance.
//!
//! Because a conjunctive query's head relation must be outside its input
//! schema, iteration is expressed through an optional **feedback relation**:
//! with `feedback_into("R")`, every output fact `T(d̄)` of a round re-enters
//! the next round as `R(d̄)`. The transitive closure of `R` by repeated
//! squaring is then simply `T(x, z) :- R(x, y), R(y, z)` iterated with
//! feedback into `R`.
//!
//! Rounds stop at the **fixpoint** (the next round instance repeats an
//! already-visited state, so no future round can derive anything new) or at
//! the round cap, whichever comes first; [`MultiRoundOutcome::converged`]
//! records which. Since conjunctive queries cannot invent new data values,
//! the reachable states are finite and the centralized iterated evaluation
//! always terminates — [`MultiRoundEngine::reference_fixpoint`] computes
//! that *global* fixpoint, the correctness yardstick for the distributed
//! run (`pc_core::multi_round_correct_on`).

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use cq::{evaluate, ConjunctiveQuery, EvalOptions, Fact, Instance, Symbol};
use delta::DeltaInstance;

use crate::distribute::DistributionStats;
use crate::engine::{OneRoundEngine, OneRoundOutcome};
use crate::network::Node;
use crate::policy::DistributionPolicy;
use crate::transport::{InMemoryTransport, Transport, TransportError};

/// Decides whether parallel-correctness transfers from the first query to
/// the second. The decision procedure itself (Section 4 of the paper)
/// lives *above* this crate — `pc_core::TransferCache` memoizes
/// `check_transfer` verdicts behind exactly this signature — so the
/// multi-query engine takes the oracle as an argument instead of
/// depending on it.
pub type TransferOracle<'o> = &'o mut dyn FnMut(&ConjunctiveQuery, &ConjunctiveQuery) -> bool;

/// A per-round policy schedule: round `r` uses the `r`-th policy, and the
/// last policy repeats once the schedule is exhausted (so a one-element
/// schedule is simply "the same policy every round").
pub struct RoundSchedule<'a> {
    policies: Vec<&'a dyn DistributionPolicy>,
}

impl<'a> RoundSchedule<'a> {
    /// A schedule repeating a single policy every round.
    pub fn repeat(policy: &'a dyn DistributionPolicy) -> RoundSchedule<'a> {
        RoundSchedule {
            policies: vec![policy],
        }
    }

    /// A schedule from an explicit policy sequence (the last one repeats).
    ///
    /// # Panics
    /// Panics when `policies` is empty; [`RoundSchedule::try_of`] returns
    /// the error instead.
    pub fn of(policies: Vec<&'a dyn DistributionPolicy>) -> RoundSchedule<'a> {
        RoundSchedule::try_of(policies).unwrap_or_else(|e| panic!("{e}"))
    }

    /// A schedule from an explicit policy sequence (the last one repeats),
    /// rejecting an empty sequence with an error instead of panicking —
    /// [`RoundSchedule::policy_for`] would otherwise underflow its index
    /// on the first round.
    pub fn try_of(policies: Vec<&'a dyn DistributionPolicy>) -> Result<RoundSchedule<'a>, String> {
        if policies.is_empty() {
            return Err("a round schedule needs at least one policy".to_string());
        }
        Ok(RoundSchedule { policies })
    }

    /// The policy of round `round` (0-based; the last policy repeats).
    pub fn policy_for(&self, round: usize) -> &'a dyn DistributionPolicy {
        self.policies[self.policy_index(round)]
    }

    /// The schedule index of the policy used in round `round` — two rounds
    /// with equal indices run the *same* policy, which is what the
    /// semi-naive loop uses to detect a policy switch (a re-shard point).
    fn policy_index(&self, round: usize) -> usize {
        round.min(self.policies.len() - 1)
    }

    /// The number of explicitly scheduled policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Always `false`: schedules are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The outcome of a multi-round evaluation.
#[derive(Clone, Debug)]
pub struct MultiRoundOutcome {
    /// The per-round one-round outcomes, in round order (including the
    /// final, converging round when the run reached its fixpoint).
    pub rounds: Vec<OneRoundOutcome>,
    /// The union of all rounds' outputs (head-relation facts).
    pub result: Instance,
    /// Every fact the run has ever seen: the initial input plus every
    /// feedback fact produced by any round (in dataflow mode the rounds
    /// re-distribute only the latest feedback facts, but this set still
    /// accumulates — it is what the fixpoint test runs against).
    pub final_state: Instance,
    /// Whether the run reached its fixpoint (the next round instance
    /// repeated an already-visited state, so no future round could derive
    /// anything new) before exhausting the round cap.
    pub converged: bool,
    /// How many reshuffles this run elided by evaluating directly on the
    /// shards resident from a previous query (`1` for a run that is a
    /// single resident round, `0` for a run that re-distributed normally).
    pub elided_reshuffles: usize,
    /// Round indices that were explicit state-reset/re-shard rounds: a
    /// semi-naive run whose schedule switched policies re-ships the full
    /// accumulated state under the new policy at these rounds (their
    /// statistics describe that full re-shard, not a delta).
    pub reshard_rounds: Vec<usize>,
}

impl MultiRoundOutcome {
    /// The number of rounds that actually ran.
    pub fn rounds_run(&self) -> usize {
        self.rounds.len()
    }

    /// Cumulative communication volume: total `(fact, node)` assignments
    /// shipped across all reshuffle phases. Each round's statistics
    /// describe what that round **actually distributed** — the accumulated
    /// state in full re-evaluation mode, only the per-round delta in
    /// semi-naive mode — so the two modes report their genuinely different
    /// shipping honestly.
    pub fn total_comm_volume(&self) -> usize {
        self.rounds.iter().map(|r| r.stats.total_assigned).sum()
    }

    /// Cumulative bytes serialized onto a process boundary across all
    /// rounds, in both directions (requests and results), as counted by
    /// the transport. `0` for purely in-process runs (nothing was
    /// serialized — an honest zero, not an estimate).
    pub fn total_comm_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.comm_bytes).sum()
    }

    /// Cumulative wall-clock time of all reshuffle phases.
    pub fn total_distribute_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.distribute_time).sum()
    }

    /// Cumulative wall-clock time of all local-evaluation phases.
    pub fn total_local_eval_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.local_eval_time).sum()
    }

    /// The largest per-round maximum node load (the bottleneck of the run).
    pub fn max_load(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.stats.max_load)
            .max()
            .unwrap_or(0)
    }
}

/// The centralized reference for a multi-round run: the global fixpoint of
/// the iterated query, computed without any distribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IteratedFixpoint {
    /// The union of all rounds' centralized outputs.
    pub result: Instance,
    /// Rounds needed to reach the fixpoint (including the converging one).
    pub rounds: usize,
}

/// The outcome of a multi-query run ([`MultiRoundEngine::evaluate_queries`]):
/// one [`MultiRoundOutcome`] per query, in input order, plus the transfer
/// bookkeeping of the elision decisions taken between consecutive queries.
#[derive(Clone, Debug)]
pub struct MultiQueryOutcome {
    /// Per-query outcomes, in the order the queries were given.
    pub per_query: Vec<MultiRoundOutcome>,
    /// How many transferability checks the run performed (one per query
    /// boundary where shards were resident and elision was allowed).
    pub transfer_checks: usize,
}

impl MultiQueryOutcome {
    /// Total reshuffles elided across all queries: the number of queries
    /// that ran directly on the resident shards of their predecessor.
    pub fn elided_reshuffles(&self) -> usize {
        self.per_query.iter().map(|o| o.elided_reshuffles).sum()
    }

    /// Total explicit re-shard rounds shipped across all queries.
    pub fn reshard_rounds(&self) -> usize {
        self.per_query.iter().map(|o| o.reshard_rounds.len()).sum()
    }

    /// Cumulative `(fact, node)` assignments shipped across all queries.
    pub fn total_comm_volume(&self) -> usize {
        self.per_query.iter().map(|o| o.total_comm_volume()).sum()
    }

    /// Cumulative bytes serialized onto a process boundary across all
    /// queries, in both directions (cf.
    /// [`MultiRoundOutcome::total_comm_bytes`]).
    pub fn total_comm_bytes(&self) -> u64 {
        self.per_query.iter().map(|o| o.total_comm_bytes()).sum()
    }
}

/// A simulated cluster iterating the one-round algorithm under a
/// [`RoundSchedule`], with fixpoint detection and a round cap.
pub struct MultiRoundEngine<'a> {
    schedule: RoundSchedule<'a>,
    max_rounds: usize,
    carry_input: bool,
    feedback: Option<Symbol>,
    workers: usize,
    distribute_workers: usize,
    streaming: bool,
    semi_naive: bool,
    eval_options: EvalOptions,
    reshuffle_always: bool,
    /// The engine's metrics registry: `transfer_checks`, `transfer_hits`,
    /// `transfer_misses` and `elided_reshuffles` accumulate here across
    /// every run, and [`MultiQueryOutcome::transfer_checks`] is derived
    /// from the `transfer_checks` counter — the registry is the single
    /// source of truth, not a parallel tally.
    registry: std::sync::Arc<obs::Registry>,
}

impl<'a> MultiRoundEngine<'a> {
    /// Creates a single-round engine over `schedule`; raise the cap with
    /// [`MultiRoundEngine::rounds`]. Defaults mirror [`OneRoundEngine`]:
    /// sequential evaluation, sequential materialized reshuffle, carried
    /// input, no feedback relation.
    pub fn new(schedule: RoundSchedule<'a>) -> MultiRoundEngine<'a> {
        MultiRoundEngine {
            schedule,
            max_rounds: 1,
            carry_input: true,
            feedback: None,
            workers: 1,
            distribute_workers: 1,
            streaming: false,
            semi_naive: false,
            eval_options: EvalOptions::default(),
            reshuffle_always: false,
            registry: std::sync::Arc::new(obs::Registry::new()),
        }
    }

    /// The engine's metrics registry (transfer-oracle and elision
    /// counters; see the field docs).
    pub fn registry(&self) -> std::sync::Arc<obs::Registry> {
        self.registry.clone()
    }

    /// Sets the [`EvalOptions`] every round's local evaluation runs with —
    /// the join strategy in particular. The options travel with the round
    /// over every transport (they are part of the wire protocol), so
    /// in-memory and cross-process rounds evaluate identically.
    pub fn eval_options(mut self, options: EvalOptions) -> Self {
        self.eval_options = options;
        self
    }

    /// Disables reshuffle elision in [`MultiRoundEngine::evaluate_queries`]:
    /// every query re-distributes from scratch even when transferability
    /// would allow running it on the resident shards. This is the baseline
    /// the comm-bytes saving of elision is measured against.
    pub fn reshuffle_always(mut self, always: bool) -> Self {
        self.reshuffle_always = always;
        self
    }

    /// Sets the round cap (at least 1). The engine stops earlier at the
    /// fixpoint.
    pub fn rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds.max(1);
        self
    }

    /// Whether each round re-distributes the accumulated instance (`true`,
    /// the default) or only the previous round's feedback facts (`false`) —
    /// the difference between stateful workers and a pure dataflow of
    /// reshuffled outputs.
    pub fn carry_input(mut self, carry: bool) -> Self {
        self.carry_input = carry;
        self
    }

    /// Renames every round's output facts into `relation` before merging
    /// them into the next round's instance, making the query effectively
    /// recursive (see the module docs).
    pub fn feedback_into(mut self, relation: &str) -> Self {
        self.feedback = Some(Symbol::new(relation));
        self
    }

    /// Pool size for local evaluation within each round (cf.
    /// [`OneRoundEngine::workers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sizes the local-evaluation pool to the machine (cf.
    /// [`OneRoundEngine::parallel`]).
    pub fn parallel(self, enabled: bool) -> Self {
        let workers = if enabled {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            1
        };
        self.workers(workers)
    }

    /// Threads sharding each round's reshuffle phase (cf.
    /// [`OneRoundEngine::distribute_workers`]).
    pub fn distribute_workers(mut self, workers: usize) -> Self {
        self.distribute_workers = workers.max(1);
        self
    }

    /// Streams chunks to workers instead of materializing every node's
    /// chunk (cf. [`OneRoundEngine::streaming`]).
    pub fn streaming(mut self, enabled: bool) -> Self {
        self.streaming = enabled;
        self
    }

    /// Switches the run to **semi-naive incremental** rounds: each round
    /// reshuffles only the facts that are new since the previous round
    /// (round 0 ships everything), the nodes keep their accumulated state
    /// across rounds inside the transport, and each node's local evaluation
    /// is one differential pass over its delta
    /// (`cq::evaluate_seminaive_step`) rather than a full re-evaluation.
    ///
    /// The final `result`, `converged` flag and round count are **provably
    /// identical** to full re-evaluation mode; per-round
    /// [`OneRoundOutcome`]s differ in the documented ways (each round's
    /// `result` holds only the *new* facts, and the loads/statistics
    /// describe the delta reshuffle). Requires carried input — checked at
    /// evaluation time — because in dataflow mode the round instance is
    /// not monotone, so there is no delta to ship. A schedule that
    /// switches policies between rounds is handled with an explicit
    /// **re-shard round**: the full accumulated state is re-shipped under
    /// the new policy as a fresh round-0 reset (recorded in
    /// [`MultiRoundOutcome::reshard_rounds`]), and delta shipping resumes
    /// from the rebuilt state. The `streaming` knob does not apply
    /// (deltas are materialized; they are small by construction).
    pub fn semi_naive(mut self, enabled: bool) -> Self {
        self.semi_naive = enabled;
        self
    }

    /// Whether the engine runs semi-naive incremental rounds.
    pub fn is_semi_naive(&self) -> bool {
        self.semi_naive
    }

    /// Panics unless the configuration combination supports incremental
    /// rounds (see [`MultiRoundEngine::semi_naive`]).
    fn check_semi_naive_config(&self) {
        assert!(
            self.carry_input,
            "semi-naive rounds require carried input: in dataflow mode the \
             round instance is not monotone, so there is no delta to ship"
        );
    }

    /// The configured round cap.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// The configured feedback relation, if any.
    pub fn feedback(&self) -> Option<Symbol> {
        self.feedback
    }

    /// Whether rounds re-distribute the accumulated instance.
    pub fn carries_input(&self) -> bool {
        self.carry_input
    }

    /// The round's output facts as they re-enter the next round.
    fn feedback_facts(&self, output: &Instance) -> Instance {
        match self.feedback {
            Some(relation) => output
                .facts()
                .map(|f| Fact::new(relation, f.values.clone()))
                .collect(),
            None => output.clone(),
        }
    }

    /// One iteration step shared by [`MultiRoundEngine::evaluate`] and
    /// [`MultiRoundEngine::reference_fixpoint`], so the distributed run and
    /// its centralized yardstick can never drift apart in their
    /// carry/feedback/fixpoint semantics. Merges a round's `output` into
    /// the accumulated `result`/`seen` and advances `state`, reporting
    /// whether iteration has terminated: the next state was already
    /// `visited`, so no future round can ever produce a new fact.
    ///
    /// Termination tests whole **states**, not individual facts. With
    /// carried input states grow monotonically, so a revisited state is
    /// exactly "this round contributed nothing new"; in dataflow mode
    /// (`carry_input = false`) states need not grow, and a round whose
    /// facts are all individually stale can still be a *novel combination*
    /// whose evaluation derives new facts — only an exact state repeat
    /// (a cycle) guarantees the run is exhausted.
    fn advance_round(
        &self,
        output: &Instance,
        result: &mut Instance,
        seen: &mut Instance,
        state: &mut Instance,
        visited: &mut BTreeSet<BTreeSet<Fact>>,
    ) -> bool {
        let contribution = self.feedback_facts(output);
        result.extend(output.facts().cloned());
        let next = if self.carry_input {
            state.union(&contribution)
        } else {
            contribution
        };
        seen.extend(next.facts().cloned());
        if !visited.insert(next.to_set()) {
            return true;
        }
        *state = next;
        false
    }

    /// Runs up to [`MultiRoundEngine::max_rounds`] distribute→local-eval
    /// cycles for `query` starting from `instance`.
    pub fn evaluate(&self, query: &ConjunctiveQuery, instance: &Instance) -> MultiRoundOutcome {
        if self.semi_naive {
            // Incremental rounds need per-node state that outlives a round,
            // so the whole run shares one transport.
            let mut transport = InMemoryTransport::new(self.workers);
            return self
                .run_rounds_delta(&mut transport, query, instance)
                .expect("in-memory rounds are infallible");
        }
        self.run_rounds(query, instance, |engine, _round, query, state| {
            Ok(engine
                .workers(self.workers)
                .streaming(self.streaming)
                .evaluate(query, state))
        })
        .expect("in-memory rounds are infallible")
    }

    /// Like [`MultiRoundEngine::evaluate`], but every round ships its
    /// chunks through `transport` — the rounds become genuinely
    /// cross-process when the transport is process-backed. The engine's
    /// `workers`/`streaming` knobs do not apply (the transport owns local
    /// evaluation); `distribute_workers` still shards the reshuffle. With
    /// [`MultiRoundEngine::semi_naive`] the rounds ship per-round deltas
    /// instead of full chunks.
    pub fn evaluate_via(
        &self,
        transport: &mut dyn Transport,
        query: &ConjunctiveQuery,
        instance: &Instance,
    ) -> Result<MultiRoundOutcome, TransportError> {
        if self.semi_naive {
            return self.run_rounds_delta(transport, query, instance);
        }
        self.run_rounds(query, instance, |engine, round, query, state| {
            engine.evaluate_via(transport, round, query, state)
        })
    }

    /// Runs a **sequence of queries** over `instance`, consulting
    /// `transfer` at each query boundary: when the oracle says parallel
    /// correctness transfers from the previous query to the next (and the
    /// previous run left its fixpoint resident at the nodes), the next
    /// query's reshuffle is **elided** — it evaluates directly on the
    /// resident shards, shipping zero input facts. Otherwise the query
    /// re-shards from scratch through the ordinary round loop.
    ///
    /// In-memory convenience over [`MultiRoundEngine::evaluate_queries_via`].
    pub fn evaluate_queries(
        &self,
        queries: &[ConjunctiveQuery],
        instance: &Instance,
        transfer: TransferOracle<'_>,
    ) -> MultiQueryOutcome {
        let mut transport = InMemoryTransport::new(self.workers);
        self.evaluate_queries_via(&mut transport, queries, instance, transfer)
            .expect("in-memory rounds are infallible")
    }

    /// [`MultiRoundEngine::evaluate_queries`] through an explicit
    /// transport. The elision decision per boundary is:
    ///
    /// 1. The previous query's run must have **converged with carried
    ///    input and no feedback rewrite** — only then is the fixpoint
    ///    state resident at the nodes, sharded by the last round's policy.
    /// 2. [`MultiRoundEngine::reshuffle_always`] must be off (the
    ///    baseline knob for measuring what elision saves).
    /// 3. The `transfer` oracle must confirm the previous query's parallel
    ///    correctness transfers to the next one (paper §4): the new query
    ///    is then correct on *any* shards the previous one was correct on
    ///    — including the resident ones. Transferability is transitive, so
    ///    checking consecutive pairs suffices across a chain of elisions.
    ///
    /// An elided query runs as a single reshuffle-free round and leaves
    /// the resident shards untouched; a re-sharding query replaces them
    /// with its own fixpoint.
    pub fn evaluate_queries_via(
        &self,
        transport: &mut dyn Transport,
        queries: &[ConjunctiveQuery],
        instance: &Instance,
        transfer: TransferOracle<'_>,
    ) -> Result<MultiQueryOutcome, TransportError> {
        let mut per_query = Vec::with_capacity(queries.len());
        let checks = self.registry.counter("transfer_checks");
        let check_hits = self.registry.counter("transfer_hits");
        let check_misses = self.registry.counter("transfer_misses");
        let elisions = self.registry.counter("elided_reshuffles");
        // The registry accumulates across runs; the outcome reports only
        // this run's checks, so count from the entry value.
        let checks_base = checks.get();
        // The query whose fixpoint is currently sharded across the nodes,
        // and which nodes hold a piece of it.
        let mut resident: Option<(ConjunctiveQuery, Vec<Node>)> = None;
        for (index, query) in queries.iter().enumerate() {
            let _query_span = obs::span!("query", index = index);
            let elide = match &resident {
                Some((prev, nodes)) if !self.reshuffle_always && !nodes.is_empty() => {
                    checks.inc();
                    let transferable = transfer(prev, query);
                    if transferable {
                        check_hits.inc();
                    } else {
                        check_misses.inc();
                    }
                    obs::instant!("transfer_check", transferable = transferable);
                    transferable
                }
                _ => false,
            };
            if elide {
                elisions.inc();
                obs::instant!("reshuffle_elided");
            }
            let outcome = if elide {
                let (_, nodes) = resident.as_ref().expect("elide implies resident shards");
                let round = self.resident_round(transport, query, &nodes.clone())?;
                let result = round.result.clone();
                MultiRoundOutcome {
                    rounds: vec![round],
                    final_state: instance.union(&result),
                    result,
                    converged: true,
                    elided_reshuffles: 1,
                    reshard_rounds: Vec::new(),
                }
            } else {
                self.evaluate_via(transport, query, instance)?
            };
            if elide {
                // The shards are untouched, but the transferability chain
                // now hangs off this query (transitivity keeps it sound).
                if let Some((prev, _)) = resident.as_mut() {
                    *prev = query.clone();
                }
            } else {
                resident = self
                    .resident_nodes(&outcome)
                    .map(|nodes| (query.clone(), nodes));
            }
            per_query.push(outcome);
        }
        Ok(MultiQueryOutcome {
            per_query,
            transfer_checks: (checks.get() - checks_base) as usize,
        })
    }

    /// Which nodes hold the just-finished run's fixpoint, if any do:
    /// requires carried input (dataflow rounds drop state), no feedback
    /// rewrite (the resident facts would be renamed copies, not the
    /// state), and convergence (a round-capped run's nodes hold an
    /// intermediate state, not the fixpoint). The shards then sit exactly
    /// where the anchor round shipped them — the last round in full mode
    /// (each full round re-ships the whole state), the last reset round in
    /// semi-naive mode (later delta rounds only top nodes up).
    fn resident_nodes(&self, outcome: &MultiRoundOutcome) -> Option<Vec<Node>> {
        if !self.carry_input || self.feedback.is_some() || !outcome.converged {
            return None;
        }
        let anchor = if self.semi_naive {
            *outcome.reshard_rounds.last().unwrap_or(&0)
        } else {
            outcome.rounds.len().saturating_sub(1)
        };
        outcome
            .rounds
            .get(anchor)
            .map(|round| round.per_node_load.keys().copied().collect())
    }

    /// One reshuffle-free round: every node in `nodes` evaluates `query`
    /// over the shard it already holds ([`Transport::send_resident`]) and
    /// replies with its full local output. Nothing is distributed, so the
    /// distribution side of the outcome is all zeros; `comm_bytes` still
    /// counts whatever result frames an actual wire transport ships back.
    fn resident_round(
        &self,
        transport: &mut dyn Transport,
        query: &ConjunctiveQuery,
        nodes: &[Node],
    ) -> Result<OneRoundOutcome, TransportError> {
        let _span = obs::span!("resident_round", nodes = nodes.len());
        let local_start = Instant::now();
        transport.begin_round(0, query, self.eval_options)?;
        for &node in nodes {
            transport.send_resident(node)?;
        }
        transport.barrier()?;
        let mut result = Instance::new();
        let mut per_node_output = BTreeMap::new();
        let mut per_node_time = BTreeMap::new();
        for &node in nodes {
            let reply = transport.recv_chunk(node)?;
            per_node_output.insert(node, reply.output.len());
            per_node_time.insert(node, reply.eval_time);
            result.extend(reply.output.facts().cloned());
        }
        let local_eval_time = local_start.elapsed();
        let comm_bytes = transport.take_bytes_shipped();
        let (index_cache_hits, index_cache_misses) = transport.index_cache_stats();
        Ok(OneRoundOutcome {
            result,
            per_node_load: nodes.iter().map(|&n| (n, 0)).collect(),
            per_node_output,
            per_node_time,
            distribute_time: Duration::ZERO,
            local_eval_time,
            workers: transport.parallelism().min(nodes.len()).max(1),
            peak_chunks: 0,
            streamed: false,
            comm_bytes,
            index_cache_hits,
            index_cache_misses,
            stats: DistributionStats {
                nodes: nodes.len(),
                total_assigned: 0,
                distinct_assigned: 0,
                max_load: 0,
                skipped: 0,
                replication_factor: 0.0,
            },
        })
    }

    /// The incremental round loop: ship each round's delta, collect each
    /// node's new derivations, feed them back, stop when a round adds
    /// nothing. With carried input the round states grow monotonically, so
    /// "the delta is empty" is exactly the repeated-state fixpoint test of
    /// the full-re-evaluation loop — the two modes converge on the same
    /// round with the same cumulative result (the differential suites pin
    /// this).
    fn run_rounds_delta(
        &self,
        transport: &mut dyn Transport,
        query: &ConjunctiveQuery,
        instance: &Instance,
    ) -> Result<MultiRoundOutcome, TransportError> {
        self.check_semi_naive_config();
        let mut acc = DeltaInstance::from_initial(instance.clone());
        let mut result = Instance::new();
        let mut rounds = Vec::new();
        let mut reshard_rounds = Vec::new();
        let mut converged = false;
        // Round numbering as seen by the transport: 0 resets per-node
        // state, so every re-shard restarts the count at 0 and ships the
        // full accumulated state under the new policy.
        let mut transport_round = 0;
        let mut active_policy = self.schedule.policy_index(0);
        let round_latency = self.registry.histogram("round_latency_us");
        for round in 0..self.max_rounds {
            let round_started = Instant::now();
            let _round_span = obs::span!("eval_round", round = round, semi_naive = true);
            let policy_index = self.schedule.policy_index(round);
            let reshard = round > 0 && policy_index != active_policy;
            active_policy = policy_index;
            let policy = self.schedule.policy_for(round);
            let round_delta = if reshard {
                // A policy switch re-routes facts that were already
                // shipped: reset the nodes and re-shard everything.
                obs::instant!("reshard", round = round);
                reshard_rounds.push(round);
                transport_round = 0;
                let _ = acc.take_delta();
                acc.full().clone()
            } else {
                acc.take_delta()
            };
            let engine = OneRoundEngine::new(policy)
                .distribute_workers(self.distribute_workers)
                .eval_options(self.eval_options);
            let outcome =
                engine.evaluate_delta_via(transport, transport_round, query, &round_delta)?;
            transport_round += 1;
            let contribution = self.feedback_facts(&outcome.result);
            result.extend(outcome.result.facts().cloned());
            acc.absorb(contribution.facts().cloned());
            rounds.push(outcome);
            round_latency
                .record(u64::try_from(round_started.elapsed().as_micros()).unwrap_or(u64::MAX));
            if acc.is_quiescent() {
                converged = true;
                break;
            }
        }
        Ok(MultiRoundOutcome {
            rounds,
            result,
            final_state: acc.full().clone(),
            converged,
            elided_reshuffles: 0,
            reshard_rounds,
        })
    }

    /// The shared round loop of [`MultiRoundEngine::evaluate`] and
    /// [`MultiRoundEngine::evaluate_via`]: only *how one round is
    /// evaluated* differs between the in-memory and transport paths, so the
    /// carry/feedback/fixpoint bookkeeping cannot drift between them.
    fn run_rounds(
        &self,
        query: &ConjunctiveQuery,
        instance: &Instance,
        mut eval_round: impl FnMut(
            OneRoundEngine<'a, dyn DistributionPolicy + 'a>,
            usize,
            &ConjunctiveQuery,
            &Instance,
        ) -> Result<OneRoundOutcome, TransportError>,
    ) -> Result<MultiRoundOutcome, TransportError> {
        let mut state = instance.clone();
        // Every round-instance state ever reached (for cycle detection) and
        // every fact ever seen (the reported `final_state`). States over a
        // fixed active domain are finite, so a repeat — and hence
        // termination — is guaranteed even in dataflow mode.
        let mut visited = BTreeSet::from([instance.to_set()]);
        let mut seen = instance.clone();
        let mut result = Instance::new();
        let mut rounds = Vec::new();
        let mut converged = false;
        let round_latency = self.registry.histogram("round_latency_us");
        for round in 0..self.max_rounds {
            let round_started = Instant::now();
            let _round_span = obs::span!("eval_round", round = round, facts = state.len());
            let policy = self.schedule.policy_for(round);
            let engine = OneRoundEngine::new(policy)
                .distribute_workers(self.distribute_workers)
                .eval_options(self.eval_options);
            let outcome = eval_round(engine, round, query, &state)?;
            let done = self.advance_round(
                &outcome.result,
                &mut result,
                &mut seen,
                &mut state,
                &mut visited,
            );
            rounds.push(outcome);
            round_latency
                .record(u64::try_from(round_started.elapsed().as_micros()).unwrap_or(u64::MAX));
            if done {
                converged = true;
                break;
            }
        }
        Ok(MultiRoundOutcome {
            rounds,
            result,
            final_state: seen,
            converged,
            elided_reshuffles: 0,
            reshard_rounds: Vec::new(),
        })
    }

    /// The centralized reference: iterates `evaluate(query, ·)` with the
    /// same carry/feedback semantics but **no round cap**, until the global
    /// fixpoint (a repeated state). Terminates on every input because
    /// conjunctive queries cannot introduce new data values, so the set of
    /// reachable states over the input's active domain is finite.
    pub fn reference_fixpoint(
        &self,
        query: &ConjunctiveQuery,
        instance: &Instance,
    ) -> IteratedFixpoint {
        let mut state = instance.clone();
        let mut visited = BTreeSet::from([instance.to_set()]);
        let mut seen = instance.clone();
        let mut result = Instance::new();
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let output = evaluate(query, &state);
            if self.advance_round(&output, &mut result, &mut seen, &mut state, &mut visited) {
                break;
            }
        }
        IteratedFixpoint { result, rounds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitPolicy;
    use crate::hypercube::HypercubePolicy;
    use crate::network::Network;
    use cq::parse_instance;

    fn square_query() -> ConjunctiveQuery {
        // One squaring step of the transitive closure of R.
        ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap()
    }

    fn chain_instance(edges: usize) -> Instance {
        parse_instance(
            &(0..edges)
                .map(|i| format!("R(v{i}, v{}).", i + 1))
                .collect::<Vec<_>>()
                .join(" "),
        )
        .unwrap()
    }

    #[test]
    fn single_round_multi_round_matches_one_round_exactly() {
        let q = square_query();
        let i = chain_instance(5);
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let one = OneRoundEngine::new(&p).evaluate(&q, &i);
        let multi = MultiRoundEngine::new(RoundSchedule::repeat(&p))
            .rounds(1)
            .evaluate(&q, &i);
        assert_eq!(multi.rounds_run(), 1);
        assert_eq!(multi.result, one.result);
        assert_eq!(multi.rounds[0].result, one.result);
        assert_eq!(multi.rounds[0].per_node_load, one.per_node_load);
        assert_eq!(multi.rounds[0].per_node_output, one.per_node_output);
        assert_eq!(multi.rounds[0].stats, one.stats);
        assert_eq!(multi.total_comm_volume(), one.stats.total_assigned);
        assert!(!multi.converged, "new T-facts appeared, no fixpoint yet");
    }

    #[test]
    fn transitive_closure_converges_and_matches_the_reference() {
        let q = square_query();
        let i = chain_instance(8);
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let engine = MultiRoundEngine::new(RoundSchedule::repeat(&p))
            .rounds(16)
            .feedback_into("R");
        let outcome = engine.evaluate(&q, &i);
        assert!(
            outcome.converged,
            "8-edge chain closes well within 16 rounds"
        );
        assert!(
            outcome.rounds_run() < 16,
            "fixpoint must stop the loop early"
        );
        // Repeated squaring with carried input closes an 8-edge chain in
        // ceil(log2 8) = 3 productive rounds plus the converging round.
        assert_eq!(outcome.rounds_run(), 4);
        // The result is every pair at distance >= 2 (T is produced only for
        // composed paths): 0..=8 gives 9 vertices, distances 2..=8.
        let expected_pairs: usize = (2..=8).map(|d| 9 - d).sum();
        assert_eq!(outcome.result.len(), expected_pairs);
        let reference = engine.reference_fixpoint(&q, &i);
        assert_eq!(outcome.result, reference.result);
        assert_eq!(outcome.rounds_run(), reference.rounds);
    }

    #[test]
    fn round_capped_run_reports_not_converged() {
        let q = square_query();
        let i = chain_instance(8);
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let outcome = MultiRoundEngine::new(RoundSchedule::repeat(&p))
            .rounds(2)
            .feedback_into("R")
            .evaluate(&q, &i);
        assert!(!outcome.converged, "2 rounds cannot close an 8-edge chain");
        assert_eq!(outcome.rounds_run(), 2);
        let reference = MultiRoundEngine::new(RoundSchedule::repeat(&p))
            .rounds(2)
            .feedback_into("R")
            .reference_fixpoint(&q, &i);
        assert!(
            !reference.result.contains_all(&outcome.result)
                || outcome.result.len() < reference.result.len(),
            "the capped run must fall short of the global fixpoint"
        );
    }

    #[test]
    fn without_feedback_the_second_round_converges() {
        // Outputs keep their head relation, which the query does not read:
        // round 2 reproduces round 1 exactly and the engine detects it.
        let q = square_query();
        let i = chain_instance(4);
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let outcome = MultiRoundEngine::new(RoundSchedule::repeat(&p))
            .rounds(10)
            .evaluate(&q, &i);
        assert!(outcome.converged);
        assert_eq!(outcome.rounds_run(), 2);
        assert_eq!(outcome.result, cq::evaluate(&q, &i));
    }

    #[test]
    fn schedule_switches_policies_between_rounds() {
        let q = square_query();
        let i = chain_instance(4);
        let network = Network::with_size(3);
        // Round 0 broadcasts (4 nodes of load = whole instance), later
        // rounds use a hypercube (different network size).
        let broadcast = ExplicitPolicy::new(network.clone()).with_default(network.nodes());
        let hypercube = HypercubePolicy::uniform(&q, 2).unwrap();
        let engine = MultiRoundEngine::new(RoundSchedule::of(vec![&broadcast, &hypercube]))
            .rounds(8)
            .feedback_into("R");
        let outcome = engine.evaluate(&q, &i);
        assert!(outcome.converged);
        assert_eq!(outcome.rounds[0].stats.nodes, 3);
        assert!(outcome.rounds.len() > 1);
        assert_eq!(outcome.rounds[1].stats.nodes, hypercube.network().len());
        assert_eq!(outcome.result, engine.reference_fixpoint(&q, &i).result);
    }

    #[test]
    fn dataflow_mode_redistributes_only_the_outputs() {
        // Without carried input, round 2's instance is only the feedback
        // facts of round 1 — loads must shrink accordingly on a broadcast
        // policy, and the seen-set still guarantees termination.
        let q = square_query();
        let i = chain_instance(4);
        let network = Network::with_size(2);
        let broadcast = ExplicitPolicy::new(network.clone()).with_default(network.nodes());
        let outcome = MultiRoundEngine::new(RoundSchedule::repeat(&broadcast))
            .rounds(10)
            .feedback_into("R")
            .carry_input(false)
            .evaluate(&q, &i);
        assert!(outcome.converged);
        assert!(outcome.rounds.len() >= 2);
        let first_load = outcome.rounds[0].stats.max_load;
        let second_load = outcome.rounds[1].stats.max_load;
        assert_eq!(first_load, i.len());
        assert!(second_load < first_load, "{second_load} !< {first_load}");
    }

    #[test]
    fn dataflow_mode_continues_past_individually_stale_rounds() {
        // Regression test for the dataflow fixpoint rule: here round 3's
        // feedback facts have all been seen in earlier rounds, yet they
        // form a NEW combination whose evaluation still derives new facts
        // (T(a, b) among them). A per-fact staleness test would stop early
        // and silently drop those answers; only an exact state repeat may
        // end the run.
        let q = square_query();
        let i = parse_instance("R(a, c). R(b, c). R(c, d). R(d, b). R(d, c).").unwrap();
        let network = Network::with_size(1);
        let broadcast = ExplicitPolicy::new(network.clone()).with_default(network.nodes());
        let engine = MultiRoundEngine::new(RoundSchedule::repeat(&broadcast))
            .rounds(50)
            .feedback_into("R")
            .carry_input(false);
        let outcome = engine.evaluate(&q, &i);
        assert!(outcome.converged);
        for fact in ["T(a, b)", "T(b, b)"] {
            let fact = cq::parse_instance(&format!("{fact}.")).unwrap();
            assert!(
                outcome.result.contains_all(&fact),
                "dataflow run must still derive {fact} (got {})",
                outcome.result
            );
        }
        assert_eq!(outcome.result, engine.reference_fixpoint(&q, &i).result);
    }

    #[test]
    fn round_schedule_repeats_its_last_policy() {
        let q = square_query();
        let a = HypercubePolicy::uniform(&q, 2).unwrap();
        let b = HypercubePolicy::uniform(&q, 3).unwrap();
        let schedule = RoundSchedule::of(vec![&a, &b]);
        assert_eq!(schedule.len(), 2);
        assert!(!schedule.is_empty());
        assert_eq!(schedule.policy_for(0).network().len(), a.network().len());
        assert_eq!(schedule.policy_for(1).network().len(), b.network().len());
        assert_eq!(schedule.policy_for(7).network().len(), b.network().len());
    }

    /// Runs the same workload in full-re-evaluation and semi-naive modes
    /// and asserts the outcome-level contract: same cumulative result,
    /// same convergence verdict, same round count.
    fn assert_semi_naive_parity<'a>(
        engine: impl Fn() -> MultiRoundEngine<'a>,
        q: &ConjunctiveQuery,
        i: &Instance,
    ) -> (MultiRoundOutcome, MultiRoundOutcome) {
        let full = engine().evaluate(q, i);
        let semi = engine().semi_naive(true).evaluate(q, i);
        assert_eq!(semi.result, full.result, "results diverged");
        assert_eq!(semi.converged, full.converged, "convergence diverged");
        assert_eq!(
            semi.rounds_run(),
            full.rounds_run(),
            "round counts diverged"
        );
        assert_eq!(semi.final_state, full.final_state, "final states diverged");
        (full, semi)
    }

    #[test]
    fn semi_naive_transitive_closure_matches_full_reevaluation() {
        let q = square_query();
        let i = chain_instance(8);
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let engine = || {
            MultiRoundEngine::new(RoundSchedule::repeat(&p))
                .rounds(16)
                .feedback_into("R")
                .workers(2)
        };
        let (full, semi) = assert_semi_naive_parity(engine, &q, &i);
        assert!(semi.converged);
        assert_eq!(semi.result, engine().reference_fixpoint(&q, &i).result);
        // The whole point: late rounds ship deltas, not the accumulated
        // state, so the cumulative fact-shipping volume must shrink.
        assert!(
            semi.total_comm_volume() < full.total_comm_volume(),
            "semi-naive shipped {} fact-assignments, full mode {}",
            semi.total_comm_volume(),
            full.total_comm_volume()
        );
        // Round 0 ships the same initial instance in both modes; every
        // later round ships a strict subset (the delta, not the
        // accumulated state).
        assert_eq!(
            semi.rounds[0].stats.total_assigned,
            full.rounds[0].stats.total_assigned
        );
        for (r, (s, f)) in semi.rounds.iter().zip(&full.rounds).enumerate().skip(1) {
            assert!(
                s.stats.total_assigned < f.stats.total_assigned,
                "round {r}: semi shipped {} >= full {}",
                s.stats.total_assigned,
                f.stats.total_assigned
            );
        }
    }

    #[test]
    fn semi_naive_round_one_delta_is_the_whole_input() {
        // Round 0 of an incremental run ships everything (every fact is
        // new), making it exactly a full evaluation.
        let q = square_query();
        let i = chain_instance(5);
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let semi = MultiRoundEngine::new(RoundSchedule::repeat(&p))
            .rounds(1)
            .semi_naive(true)
            .evaluate(&q, &i);
        let one = OneRoundEngine::new(&p).evaluate(&q, &i);
        assert_eq!(semi.rounds[0].result, one.result);
        assert_eq!(semi.rounds[0].per_node_load, one.per_node_load);
        assert_eq!(semi.rounds[0].stats, one.stats);
    }

    #[test]
    fn semi_naive_empty_instance_converges_on_empty_round_one_deltas() {
        // Edge case: the very first delta is already empty. Every node
        // receives an empty round-0 chunk, derives nothing, and the run
        // converges after one round — in both modes.
        let q = square_query();
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let engine = || {
            MultiRoundEngine::new(RoundSchedule::repeat(&p))
                .rounds(4)
                .feedback_into("R")
        };
        let (_, semi) = assert_semi_naive_parity(engine, &q, &Instance::new());
        assert!(semi.converged);
        assert_eq!(semi.rounds_run(), 1);
        assert!(semi.result.is_empty());
        assert!(semi.rounds[0].per_node_load.values().all(|&l| l == 0));
    }

    #[test]
    fn semi_naive_feedback_rederiving_only_known_facts_converges() {
        // Edge case: the feedback facts of the productive round are all
        // already present in the input (R(a, c) pre-exists), so the
        // incremental run must recognize quiescence even though the round
        // produced output.
        let q = square_query();
        let i = cq::parse_instance("R(a, b). R(b, c). R(a, c).").unwrap();
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let engine = || {
            MultiRoundEngine::new(RoundSchedule::repeat(&p))
                .rounds(8)
                .feedback_into("R")
        };
        let (_, semi) = assert_semi_naive_parity(engine, &q, &i);
        assert!(semi.converged);
        assert_eq!(semi.rounds_run(), 1, "nothing new ever enters the state");
        assert_eq!(semi.result, cq::parse_instance("T(a, c).").unwrap());
    }

    #[test]
    fn semi_naive_round_cap_short_of_fixpoint_reports_not_converged() {
        // Edge case: the cap stops the run mid-closure; both modes must
        // agree on the partial result and on not having converged.
        let q = square_query();
        let i = chain_instance(8);
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let engine = || {
            MultiRoundEngine::new(RoundSchedule::repeat(&p))
                .rounds(2)
                .feedback_into("R")
        };
        let (_, semi) = assert_semi_naive_parity(engine, &q, &i);
        assert!(!semi.converged);
        assert_eq!(semi.rounds_run(), 2);
        let fixpoint = engine().rounds(16).reference_fixpoint(&q, &i);
        assert!(semi.result.len() < fixpoint.result.len());
    }

    #[test]
    fn semi_naive_without_feedback_converges_on_the_second_round() {
        let q = square_query();
        let i = chain_instance(4);
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let engine = || MultiRoundEngine::new(RoundSchedule::repeat(&p)).rounds(10);
        let (_, semi) = assert_semi_naive_parity(engine, &q, &i);
        assert!(semi.converged);
        assert_eq!(semi.rounds_run(), 2);
        assert!(semi.rounds[1].result.is_empty(), "round 2 is a pure probe");
    }

    #[test]
    #[should_panic(expected = "carried input")]
    fn semi_naive_rejects_dataflow_mode() {
        let q = square_query();
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let _ = MultiRoundEngine::new(RoundSchedule::repeat(&p))
            .rounds(4)
            .carry_input(false)
            .semi_naive(true)
            .evaluate(&q, &chain_instance(3));
    }

    #[test]
    fn round_schedule_try_of_rejects_an_empty_sequence() {
        // Regression: `RoundSchedule::of(vec![])` used to build fine and
        // then panic inside `policy_for` on the first round; emptiness is
        // now a construction-time error.
        let err = RoundSchedule::try_of(Vec::new()).err().unwrap();
        assert!(err.contains("at least one policy"), "{err}");
    }

    #[test]
    fn semi_naive_multi_policy_schedule_reshards_and_matches_full_mode() {
        // A schedule that switches policies used to be rejected in
        // semi-naive mode; it now runs via an explicit re-shard round at
        // the switch and must agree with full re-evaluation exactly.
        let q = square_query();
        let i = chain_instance(8);
        let network = Network::with_size(3);
        let broadcast = ExplicitPolicy::new(network.clone()).with_default(network.nodes());
        let hypercube = HypercubePolicy::uniform(&q, 2).unwrap();
        let engine = || {
            MultiRoundEngine::new(RoundSchedule::of(vec![&broadcast, &hypercube]))
                .rounds(16)
                .feedback_into("R")
        };
        let (full, semi) = assert_semi_naive_parity(engine, &q, &i);
        assert!(semi.converged);
        assert_eq!(
            semi.reshard_rounds,
            vec![1],
            "the policy switch at round 1 must re-shard"
        );
        assert!(full.reshard_rounds.is_empty());
        assert_eq!(semi.result, engine().reference_fixpoint(&q, &i).result);
        // The re-shard round ships the full accumulated state under the
        // new policy, exactly like full mode's same round.
        assert_eq!(
            semi.rounds[1].stats.total_assigned,
            full.rounds[1].stats.total_assigned
        );
    }

    // ------------------------------------------------- multi-query elision

    fn loop_query() -> ConjunctiveQuery {
        // PC transfers from this query to `square_query` (paper §4).
        ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z), R(y, y).").unwrap()
    }

    fn broadcast_engine<'a>(broadcast: &'a ExplicitPolicy) -> MultiRoundEngine<'a> {
        MultiRoundEngine::new(RoundSchedule::repeat(broadcast)).rounds(4)
    }

    #[test]
    fn transferable_query_sequences_elide_the_reshuffle() {
        let queries = [loop_query(), square_query()];
        let i = parse_instance("R(a, a). R(a, b). R(b, c).").unwrap();
        let network = Network::with_size(2);
        let broadcast = ExplicitPolicy::new(network.clone()).with_default(network.nodes());
        let mut checked = Vec::new();
        let outcome = broadcast_engine(&broadcast).evaluate_queries(
            &queries,
            &i,
            &mut |p: &ConjunctiveQuery, q: &ConjunctiveQuery| {
                checked.push((p.clone(), q.clone()));
                true
            },
        );
        assert_eq!(outcome.transfer_checks, 1);
        assert_eq!(outcome.elided_reshuffles(), 1);
        assert_eq!(checked, vec![(queries[0].clone(), queries[1].clone())]);
        // The elided query's answers match a from-scratch evaluation...
        assert_eq!(outcome.per_query[1].result, cq::evaluate(&queries[1], &i));
        // ...yet it shipped zero input facts.
        assert_eq!(outcome.per_query[1].total_comm_volume(), 0);
        assert!(outcome.per_query[0].total_comm_volume() > 0);
    }

    #[test]
    fn elision_chains_update_the_transfer_anchor() {
        // Three queries, all transferring: the second check must be asked
        // about (Q2, Q3), not (Q1, Q3) — the resident anchor advances even
        // though the shards never move.
        let queries = [loop_query(), square_query(), loop_query()];
        let i = parse_instance("R(a, a). R(a, b).").unwrap();
        let network = Network::with_size(2);
        let broadcast = ExplicitPolicy::new(network.clone()).with_default(network.nodes());
        let mut pairs = Vec::new();
        let outcome = broadcast_engine(&broadcast).evaluate_queries(
            &queries,
            &i,
            &mut |p: &ConjunctiveQuery, q: &ConjunctiveQuery| {
                pairs.push((p.clone(), q.clone()));
                true
            },
        );
        assert_eq!(outcome.elided_reshuffles(), 2);
        assert_eq!(
            pairs,
            vec![
                (queries[0].clone(), queries[1].clone()),
                (queries[1].clone(), queries[2].clone()),
            ]
        );
    }

    #[test]
    fn non_transferable_boundaries_reshard_from_scratch() {
        let queries = [square_query(), loop_query()];
        let i = parse_instance("R(a, a). R(a, b). R(b, c).").unwrap();
        let network = Network::with_size(2);
        let broadcast = ExplicitPolicy::new(network.clone()).with_default(network.nodes());
        let outcome =
            broadcast_engine(&broadcast).evaluate_queries(&queries, &i, &mut |_, _| false);
        assert_eq!(outcome.transfer_checks, 1);
        assert_eq!(outcome.elided_reshuffles(), 0);
        assert_eq!(outcome.per_query[1].result, cq::evaluate(&queries[1], &i));
        assert!(
            outcome.per_query[1].total_comm_volume() > 0,
            "a refused transfer must re-shard"
        );
    }

    #[test]
    fn registry_counters_agree_with_outcome_fields() {
        // The migration contract: the outcome's transfer/elision numbers
        // are derived from the engine's metrics registry, so the two views
        // can never drift.
        let queries = [loop_query(), square_query(), loop_query()];
        let i = parse_instance("R(a, a). R(a, b). R(b, c).").unwrap();
        let network = Network::with_size(2);
        let broadcast = ExplicitPolicy::new(network.clone()).with_default(network.nodes());
        let engine = broadcast_engine(&broadcast);
        let registry = engine.registry();
        let mut verdicts = [true, false].iter().copied().cycle();
        let outcome = engine.evaluate_queries(&queries, &i, &mut |_, _| verdicts.next().unwrap());
        assert_eq!(
            registry.counter_value("transfer_checks") as usize,
            outcome.transfer_checks
        );
        assert_eq!(
            registry.counter_value("elided_reshuffles") as usize,
            outcome.elided_reshuffles()
        );
        assert_eq!(
            registry.counter_value("transfer_hits") + registry.counter_value("transfer_misses"),
            registry.counter_value("transfer_checks")
        );
        // A second run on the same engine accumulates in the registry but
        // still reports only its own checks in the outcome.
        let again = engine.evaluate_queries(&queries, &i, &mut |_, _| true);
        assert_eq!(again.transfer_checks, 2);
        assert_eq!(
            registry.counter_value("transfer_checks") as usize,
            outcome.transfer_checks + again.transfer_checks
        );
    }

    #[test]
    fn reshuffle_always_never_consults_the_oracle() {
        let queries = [loop_query(), square_query()];
        let i = parse_instance("R(a, a). R(a, b).").unwrap();
        let network = Network::with_size(2);
        let broadcast = ExplicitPolicy::new(network.clone()).with_default(network.nodes());
        let outcome = broadcast_engine(&broadcast)
            .reshuffle_always(true)
            .evaluate_queries(&queries, &i, &mut |_, _| {
                panic!("the baseline must not check transferability")
            });
        assert_eq!(outcome.transfer_checks, 0);
        assert_eq!(outcome.elided_reshuffles(), 0);
    }

    #[test]
    fn unconverged_or_feedback_runs_leave_no_resident_shards() {
        let queries = [loop_query(), square_query()];
        let i = parse_instance("R(a, a). R(a, b). R(b, c).").unwrap();
        let network = Network::with_size(2);
        let broadcast = ExplicitPolicy::new(network.clone()).with_default(network.nodes());
        // Round cap 1: query 1 cannot converge, so its shards are an
        // intermediate state and must not be reused.
        let capped = MultiRoundEngine::new(RoundSchedule::repeat(&broadcast))
            .rounds(1)
            .evaluate_queries(&queries, &i, &mut |_, _| {
                panic!("no resident shards, no transfer check")
            });
        assert_eq!(capped.transfer_checks, 0);
        // A feedback rewrite renames the resident facts, so they are not
        // the state either.
        let feedback = broadcast_engine(&broadcast)
            .rounds(8)
            .feedback_into("R")
            .evaluate_queries(&queries, &i, &mut |_, _| {
                panic!("no resident shards, no transfer check")
            });
        assert_eq!(feedback.transfer_checks, 0);
        assert_eq!(feedback.elided_reshuffles(), 0);
    }

    #[test]
    fn elided_and_resharded_multi_query_runs_agree() {
        // The elision is an optimization, never a semantics change: for a
        // transferring sequence, per-query results and final states match
        // the reshuffle-always baseline in both evaluation modes — while
        // shipping strictly fewer fact-assignments.
        let queries = [loop_query(), square_query()];
        let i = parse_instance("R(a, a). R(a, b). R(b, c). R(c, a).").unwrap();
        let network = Network::with_size(3);
        let broadcast = ExplicitPolicy::new(network.clone()).with_default(network.nodes());
        for semi in [false, true] {
            let engine = || broadcast_engine(&broadcast).semi_naive(semi);
            let elided = engine().evaluate_queries(&queries, &i, &mut |_, _| true);
            let baseline =
                engine()
                    .reshuffle_always(true)
                    .evaluate_queries(&queries, &i, &mut |_, _| true);
            assert_eq!(elided.elided_reshuffles(), 1, "semi={semi}");
            assert_eq!(baseline.elided_reshuffles(), 0);
            for (e, b) in elided.per_query.iter().zip(&baseline.per_query) {
                assert_eq!(e.result, b.result, "semi={semi}");
                assert_eq!(e.final_state, b.final_state, "semi={semi}");
                assert_eq!(e.converged, b.converged, "semi={semi}");
            }
            assert!(
                elided.total_comm_volume() < baseline.total_comm_volume(),
                "semi={semi}: elision must ship strictly less"
            );
        }
    }

    #[test]
    fn streaming_multi_round_agrees_with_materialized_multi_round() {
        let q = square_query();
        let i = chain_instance(6);
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let base = MultiRoundEngine::new(RoundSchedule::repeat(&p))
            .rounds(8)
            .feedback_into("R")
            .evaluate(&q, &i);
        let streamed = MultiRoundEngine::new(RoundSchedule::repeat(&p))
            .rounds(8)
            .feedback_into("R")
            .streaming(true)
            .workers(3)
            .distribute_workers(2)
            .evaluate(&q, &i);
        assert_eq!(base.result, streamed.result);
        assert_eq!(base.converged, streamed.converged);
        assert_eq!(base.rounds_run(), streamed.rounds_run());
        for (m, s) in base.rounds.iter().zip(&streamed.rounds) {
            assert_eq!(m.result, s.result);
            assert_eq!(m.per_node_load, s.per_node_load);
            assert_eq!(m.stats, s.stats);
        }
    }
}
