//! Deterministic hash functions used as the `bucket` predicates of
//! Section 5.2 of the paper.

use cq::Value;

/// FNV-1a hash of a byte string with a seed (deterministic across runs).
pub fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf29ce484222325u64 ^ seed.wrapping_mul(0x9E3779B97F4A7C15);
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// A (possibly partial) hash function from data values to buckets.
///
/// The paper's footnote 6 defines hash functions as *partial* mappings from
/// **dom** to a finite bucket set; facts whose values fall outside the domain
/// of the hash function are skipped by the policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HashScheme {
    /// `h(v) = fnv1a(v, seed) mod buckets` — a total hash function.
    Modulo {
        /// Number of buckets (the image is `0..buckets`).
        buckets: usize,
        /// Seed distinguishing the hash functions of different dimensions.
        seed: u64,
    },
    /// The identity hash over an explicit finite domain: the i-th listed
    /// value is mapped to bucket i, all other values are undefined.
    ///
    /// This is the hash function used in the proof of Lemma 5.7 to show that
    /// the Hypercube family is `Q`-scattered.
    IdentityOver(Vec<Value>),
}

impl HashScheme {
    /// The number of buckets in the image of the hash function.
    pub fn buckets(&self) -> usize {
        match self {
            HashScheme::Modulo { buckets, .. } => *buckets,
            HashScheme::IdentityOver(values) => values.len(),
        }
    }

    /// The bucket of `value`, or `None` if the hash function is undefined on it.
    pub fn bucket_of(&self, value: Value) -> Option<usize> {
        match self {
            HashScheme::Modulo { buckets, seed } => {
                if *buckets == 0 {
                    None
                } else {
                    Some((fnv1a(value.as_str().as_bytes(), *seed) % *buckets as u64) as usize)
                }
            }
            HashScheme::IdentityOver(values) => values.iter().position(|&v| v == value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_deterministic_and_seed_sensitive() {
        let a = fnv1a(b"alpha", 0);
        let b = fnv1a(b"alpha", 0);
        let c = fnv1a(b"alpha", 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(fnv1a(b"alpha", 0), fnv1a(b"beta", 0));
    }

    #[test]
    fn modulo_scheme_is_total_and_in_range() {
        let h = HashScheme::Modulo {
            buckets: 4,
            seed: 7,
        };
        for name in ["a", "b", "c", "d", "e", "0", "1", "2"] {
            let bucket = h.bucket_of(Value::new(name)).unwrap();
            assert!(bucket < 4);
        }
        assert_eq!(h.buckets(), 4);
    }

    #[test]
    fn zero_buckets_is_undefined_everywhere() {
        let h = HashScheme::Modulo {
            buckets: 0,
            seed: 0,
        };
        assert_eq!(h.bucket_of(Value::new("a")), None);
    }

    #[test]
    fn identity_scheme_is_partial() {
        let h = HashScheme::IdentityOver(vec![Value::new("a"), Value::new("b")]);
        assert_eq!(h.bucket_of(Value::new("a")), Some(0));
        assert_eq!(h.bucket_of(Value::new("b")), Some(1));
        assert_eq!(h.bucket_of(Value::new("c")), None);
        assert_eq!(h.buckets(), 2);
    }
}
