//! Results of distributing an instance over a network.

use std::collections::BTreeMap;
use std::fmt;

use cq::{Fact, Instance};

use crate::network::{Network, Node};

/// The result of reshuffling an instance under a policy: `dist_P(I)`, the
/// mapping from nodes to their data chunks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Distribution {
    chunks: BTreeMap<Node, Instance>,
}

impl Distribution {
    /// An empty distribution over `network` (every node gets an empty chunk).
    pub fn empty(network: &Network) -> Distribution {
        Distribution {
            chunks: network.nodes().map(|n| (n, Instance::new())).collect(),
        }
    }

    /// Assigns `fact` to `node` (adding the node if it was unknown).
    pub fn assign(&mut self, node: Node, fact: Fact) {
        self.chunks.entry(node).or_default().insert(fact);
    }

    /// The data chunk of `node` (empty if the node is unknown).
    pub fn chunk(&self, node: Node) -> &Instance {
        static EMPTY: std::sync::OnceLock<Instance> = std::sync::OnceLock::new();
        self.chunks
            .get(&node)
            .unwrap_or_else(|| EMPTY.get_or_init(Instance::new))
    }

    /// Iterates over `(node, chunk)` pairs in node order.
    pub fn chunks(&self) -> impl Iterator<Item = (Node, &Instance)> + '_ {
        self.chunks.iter().map(|(&n, i)| (n, i))
    }

    /// The nodes of the distribution.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        self.chunks.keys().copied()
    }

    /// The union of all chunks (the facts that were not skipped).
    pub fn union_of_chunks(&self) -> Instance {
        let mut out = Instance::new();
        for chunk in self.chunks.values() {
            out.extend(chunk.facts().cloned());
        }
        out
    }

    /// Communication and balance statistics of the distribution.
    pub fn stats(&self, original: &Instance) -> DistributionStats {
        let total_assigned: usize = self.chunks.values().map(Instance::len).sum();
        let max_load = self.chunks.values().map(Instance::len).max().unwrap_or(0);
        let distributed = self.union_of_chunks();
        let distinct_assigned = distributed.len();
        let skipped = original
            .facts()
            .filter(|f| !distributed.contains(f))
            .count();
        DistributionStats {
            nodes: self.chunks.len(),
            total_assigned,
            distinct_assigned,
            max_load,
            skipped,
            replication_factor: if distinct_assigned == 0 {
                0.0
            } else {
                total_assigned as f64 / distinct_assigned as f64
            },
        }
    }
}

/// Load and communication statistics for one distribution of an instance.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct DistributionStats {
    /// Number of nodes in the network.
    pub nodes: usize,
    /// Total number of (fact, node) assignments — the communication volume.
    pub total_assigned: usize,
    /// Number of distinct facts that reached at least one node.
    pub distinct_assigned: usize,
    /// Size of the largest chunk — the bottleneck node's load.
    pub max_load: usize,
    /// Facts of the original instance that were skipped (sent nowhere).
    pub skipped: usize,
    /// `total_assigned / distinct_assigned`: average copies per distributed fact.
    pub replication_factor: f64,
}

impl fmt::Display for DistributionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes={} total={} distinct={} max_load={} skipped={} replication={:.2}",
            self.nodes,
            self.total_assigned,
            self.distinct_assigned,
            self.max_load,
            self.skipped,
            self.replication_factor
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_chunk() {
        let network = Network::with_size(2);
        let mut d = Distribution::empty(&network);
        let f = Fact::from_names("R", &["a", "b"]);
        d.assign(Node::numbered(0), f.clone());
        assert!(d.chunk(Node::numbered(0)).contains(&f));
        assert!(d.chunk(Node::numbered(1)).is_empty());
        assert!(d.chunk(Node::new("unknown")).is_empty());
    }

    #[test]
    fn union_of_chunks_deduplicates() {
        let network = Network::with_size(2);
        let mut d = Distribution::empty(&network);
        let f = Fact::from_names("R", &["a", "b"]);
        d.assign(Node::numbered(0), f.clone());
        d.assign(Node::numbered(1), f.clone());
        assert_eq!(d.union_of_chunks().len(), 1);
    }

    #[test]
    fn stats_measure_replication_and_skipped() {
        let network = Network::with_size(2);
        let f1 = Fact::from_names("R", &["a", "b"]);
        let f2 = Fact::from_names("R", &["b", "c"]);
        let f3 = Fact::from_names("R", &["c", "d"]);
        let original = Instance::from_facts([f1.clone(), f2.clone(), f3.clone()]);

        let mut d = Distribution::empty(&network);
        d.assign(Node::numbered(0), f1.clone());
        d.assign(Node::numbered(1), f1.clone());
        d.assign(Node::numbered(0), f2.clone());
        // f3 skipped

        let stats = d.stats(&original);
        assert_eq!(stats.nodes, 2);
        assert_eq!(stats.total_assigned, 3);
        assert_eq!(stats.distinct_assigned, 2);
        assert_eq!(stats.max_load, 2);
        assert_eq!(stats.skipped, 1);
        assert!((stats.replication_factor - 1.5).abs() < 1e-9);
    }
}
