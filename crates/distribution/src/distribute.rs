//! Results of distributing an instance over a network: the fully
//! materialized [`Distribution`] and the borrowed, streaming
//! [`ChunkStream`].

use std::collections::BTreeMap;
use std::fmt;

use cq::{Fact, Instance};

use crate::network::{Network, Node};
use crate::policy::DistributionPolicy;

/// The result of reshuffling an instance under a policy: `dist_P(I)`, the
/// mapping from nodes to their data chunks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Distribution {
    chunks: BTreeMap<Node, Instance>,
}

impl Distribution {
    /// An empty distribution over `network` (every node gets an empty chunk).
    pub fn empty(network: &Network) -> Distribution {
        Distribution {
            chunks: network.nodes().map(|n| (n, Instance::new())).collect(),
        }
    }

    /// Assigns `fact` to `node` (adding the node if it was unknown).
    pub fn assign(&mut self, node: Node, fact: Fact) {
        self.chunks.entry(node).or_default().insert(fact);
    }

    /// The data chunk of `node` (empty if the node is unknown).
    pub fn chunk(&self, node: Node) -> &Instance {
        static EMPTY: std::sync::OnceLock<Instance> = std::sync::OnceLock::new();
        self.chunks
            .get(&node)
            .unwrap_or_else(|| EMPTY.get_or_init(Instance::new))
    }

    /// Iterates over `(node, chunk)` pairs in node order.
    pub fn chunks(&self) -> impl Iterator<Item = (Node, &Instance)> + '_ {
        self.chunks.iter().map(|(&n, i)| (n, i))
    }

    /// The nodes of the distribution.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        self.chunks.keys().copied()
    }

    /// The union of all chunks (the facts that were not skipped).
    pub fn union_of_chunks(&self) -> Instance {
        let mut out = Instance::new();
        for chunk in self.chunks.values() {
            out.extend(chunk.facts().cloned());
        }
        out
    }

    /// Consumes the distribution into owned `(node, chunk)` pairs in node
    /// order — the shipping side of a round hands each chunk to a
    /// [`Transport`](crate::Transport) without re-cloning it.
    pub fn into_chunks(self) -> impl Iterator<Item = (Node, Instance)> {
        self.chunks.into_iter()
    }

    /// Communication and balance statistics of the distribution.
    pub fn stats(&self, original: &Instance) -> DistributionStats {
        let total_assigned: usize = self.chunks.values().map(Instance::len).sum();
        let max_load = self.chunks.values().map(Instance::len).max().unwrap_or(0);
        let distributed = self.union_of_chunks();
        let distinct_assigned = distributed.len();
        let skipped = original
            .facts()
            .filter(|f| !distributed.contains(f))
            .count();
        DistributionStats {
            nodes: self.chunks.len(),
            total_assigned,
            distinct_assigned,
            max_load,
            skipped,
            replication_factor: if distinct_assigned == 0 {
                0.0
            } else {
                total_assigned as f64 / distinct_assigned as f64
            },
        }
    }
}

/// The result of reshuffling an instance under a policy **without**
/// materializing per-node [`Instance`] chunks: every node maps to a vector
/// of facts *borrowed* from the original instance.
///
/// A materialized [`Distribution`] clones every fact once per receiving
/// node, so its peak memory scales with `nodes × facts` (broadcast being the
/// worst case). A `ChunkStream` stores only references; an owned chunk for a
/// node is built on demand by [`ChunkStream::for_node_lazy`] and can be
/// dropped as soon as the node's local evaluation finishes, so with a
/// bounded worker pool the peak number of owned chunks is the pool size, not
/// the network size.
#[derive(Clone, Debug)]
pub struct ChunkStream<'a> {
    assignments: BTreeMap<Node, Vec<&'a Fact>>,
}

impl<'a> ChunkStream<'a> {
    /// Reshuffles `instance` under `policy`, recording borrowed per-node
    /// fact slices. With `workers > 1` the `nodes_for` calls are sharded
    /// over that many scoped threads (bounded by the fact count); the result
    /// is identical to the sequential build because a single shard loop
    /// processes contiguous subranges of the instance's deterministic fact
    /// order and shards are merged in shard order (the one-shard case skips
    /// the thread spawn).
    pub fn build<P: DistributionPolicy + ?Sized>(
        policy: &P,
        instance: &'a Instance,
        workers: usize,
    ) -> ChunkStream<'a> {
        let mut assignments: BTreeMap<Node, Vec<&'a Fact>> =
            policy.network().nodes().map(|n| (n, Vec::new())).collect();
        let facts: Vec<&'a Fact> = instance.facts().collect();
        // One OS thread per shard: cap the shard count at twice the
        // machine's parallelism (CPU-bound work gains nothing beyond that,
        // and an oversized --distribute-workers must not exhaust OS thread
        // limits), and never more shards than facts.
        let hw_cap = std::thread::available_parallelism()
            .map_or(1, usize::from)
            .saturating_mul(2);
        let workers = workers.min(hw_cap).clamp(1, facts.len().max(1));
        let assign_shard = |shard: &[&'a Fact]| {
            let mut part: BTreeMap<Node, Vec<&'a Fact>> = BTreeMap::new();
            for &fact in shard {
                for node in policy.nodes_for(fact) {
                    part.entry(node).or_default().push(fact);
                }
            }
            part
        };
        let shard_len = facts.len().div_ceil(workers).max(1);
        let shards: Vec<&[&'a Fact]> = facts.chunks(shard_len).collect();
        let parts: Vec<BTreeMap<Node, Vec<&'a Fact>>> = if shards.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|shard| scope.spawn(move || assign_shard(shard)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("distribute shard panicked"))
                    .collect()
            })
        } else {
            shards.into_iter().map(assign_shard).collect()
        };
        for part in parts {
            for (node, mut refs) in part {
                assignments.entry(node).or_default().append(&mut refs);
            }
        }
        ChunkStream { assignments }
    }

    /// The nodes of the stream in node order (every network node, plus any
    /// node the policy assigned facts to).
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        self.assignments.keys().copied()
    }

    /// The borrowed facts assigned to `node` (empty if the node is unknown).
    pub fn facts_for(&self, node: Node) -> &[&'a Fact] {
        self.assignments
            .get(&node)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The load of `node` (its chunk size) without materializing the chunk.
    pub fn len_of(&self, node: Node) -> usize {
        self.facts_for(node).len()
    }

    /// Number of node entries in the stream.
    pub fn chunk_count(&self) -> usize {
        self.assignments.len()
    }

    /// Materializes the owned chunk of a single node on demand — the
    /// streaming counterpart of [`Distribution::chunk`]. The caller decides
    /// the chunk's lifetime, so a worker pool keeps at most one owned chunk
    /// alive per worker.
    pub fn for_node_lazy(&self, node: Node) -> Instance {
        Instance::from_facts(self.facts_for(node).iter().map(|&f| f.clone()))
    }

    /// Materializes the whole stream into a [`Distribution`] (differential
    /// testing hook; defeats the purpose of streaming in production paths).
    pub fn materialize(&self) -> Distribution {
        let mut dist = Distribution {
            chunks: self
                .assignments
                .keys()
                .map(|&n| (n, Instance::new()))
                .collect(),
        };
        for (&node, refs) in &self.assignments {
            for &fact in refs {
                dist.assign(node, fact.clone());
            }
        }
        dist
    }

    /// Communication and balance statistics, identical to the stats of the
    /// materialized [`Distribution`] of the same policy and instance.
    /// `skipped` counts by membership, exactly like [`Distribution::stats`],
    /// so the numbers stay well-defined even against an `original` the
    /// stream was not built from.
    pub fn stats(&self, original: &Instance) -> DistributionStats {
        let total_assigned: usize = self.assignments.values().map(Vec::len).sum();
        let max_load = self.assignments.values().map(Vec::len).max().unwrap_or(0);
        let assigned: std::collections::BTreeSet<&Fact> =
            self.assignments.values().flatten().copied().collect();
        let distinct_assigned = assigned.len();
        let skipped = original.facts().filter(|f| !assigned.contains(f)).count();
        DistributionStats {
            nodes: self.assignments.len(),
            total_assigned,
            distinct_assigned,
            max_load,
            skipped,
            replication_factor: if distinct_assigned == 0 {
                0.0
            } else {
                total_assigned as f64 / distinct_assigned as f64
            },
        }
    }
}

/// Load and communication statistics for one distribution of an instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistributionStats {
    /// Number of nodes in the network.
    pub nodes: usize,
    /// Total number of (fact, node) assignments — the communication volume.
    pub total_assigned: usize,
    /// Number of distinct facts that reached at least one node.
    pub distinct_assigned: usize,
    /// Size of the largest chunk — the bottleneck node's load.
    pub max_load: usize,
    /// Facts of the original instance that were skipped (sent nowhere).
    pub skipped: usize,
    /// `total_assigned / distinct_assigned`: average copies per distributed fact.
    pub replication_factor: f64,
}

impl fmt::Display for DistributionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes={} total={} distinct={} max_load={} skipped={} replication={:.2}",
            self.nodes,
            self.total_assigned,
            self.distinct_assigned,
            self.max_load,
            self.skipped,
            self.replication_factor
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_chunk() {
        let network = Network::with_size(2);
        let mut d = Distribution::empty(&network);
        let f = Fact::from_names("R", &["a", "b"]);
        d.assign(Node::numbered(0), f.clone());
        assert!(d.chunk(Node::numbered(0)).contains(&f));
        assert!(d.chunk(Node::numbered(1)).is_empty());
        assert!(d.chunk(Node::new("unknown")).is_empty());
    }

    #[test]
    fn union_of_chunks_deduplicates() {
        let network = Network::with_size(2);
        let mut d = Distribution::empty(&network);
        let f = Fact::from_names("R", &["a", "b"]);
        d.assign(Node::numbered(0), f.clone());
        d.assign(Node::numbered(1), f.clone());
        assert_eq!(d.union_of_chunks().len(), 1);
    }

    #[test]
    fn stats_measure_replication_and_skipped() {
        let network = Network::with_size(2);
        let f1 = Fact::from_names("R", &["a", "b"]);
        let f2 = Fact::from_names("R", &["b", "c"]);
        let f3 = Fact::from_names("R", &["c", "d"]);
        let original = Instance::from_facts([f1.clone(), f2.clone(), f3.clone()]);

        let mut d = Distribution::empty(&network);
        d.assign(Node::numbered(0), f1.clone());
        d.assign(Node::numbered(1), f1.clone());
        d.assign(Node::numbered(0), f2.clone());
        // f3 skipped

        let stats = d.stats(&original);
        assert_eq!(stats.nodes, 2);
        assert_eq!(stats.total_assigned, 3);
        assert_eq!(stats.distinct_assigned, 2);
        assert_eq!(stats.max_load, 2);
        assert_eq!(stats.skipped, 1);
        assert!((stats.replication_factor - 1.5).abs() < 1e-9);
    }
}
