//! Hypercube distribution policies (Section 5.2 of the paper).
//!
//! For a conjunctive query `Q` with variables `x₁, …, x_k`, a *hypercube*
//! `H = (h₁, …, h_k)` of hash functions determines a policy `P_H`: the
//! address space is `img(h₁) × … × img(h_k)`, and for every valuation `V`
//! and atom `A` of `Q`, the fact `V(A)` is sent to every node whose address
//! agrees with `h_i(V(x_i))` on the dimensions of the variables occurring in
//! `A` (and is arbitrary on the other dimensions).
//!
//! [`HypercubePolicy`] realizes `P_H` as a [`RuleBasedPolicy`] with one rule
//! per body atom, exactly as in the declarative specification of the paper.
//! [`HypercubeFamily`] represents the family `H_Q` of all hypercube policies
//! of a query, which Lemma 5.7 shows to be `Q`-generous and `Q`-scattered.

use std::collections::BTreeSet;

use cq::{ConjunctiveQuery, Fact, Instance, Variable};

use crate::hash::HashScheme;
use crate::network::{Network, Node};
use crate::policy::DistributionPolicy;
use crate::rules::{AddressTerm, DistributionRule, RuleBasedPolicy, RulePolicyError};

/// A concrete Hypercube distribution policy `P_H` for a query.
#[derive(Clone, Debug)]
pub struct HypercubePolicy {
    query: ConjunctiveQuery,
    dimensions: Vec<Variable>,
    inner: RuleBasedPolicy,
}

impl HypercubePolicy {
    /// Builds the policy for `query` from one hash scheme per query variable
    /// (in the order of [`ConjunctiveQuery::variables`]).
    pub fn new(
        query: &ConjunctiveQuery,
        schemes: Vec<HashScheme>,
    ) -> Result<HypercubePolicy, RulePolicyError> {
        let dimensions = query.variables();
        assert_eq!(
            schemes.len(),
            dimensions.len(),
            "one hash scheme per query variable is required"
        );
        let rules = query
            .body()
            .iter()
            .map(|atom| DistributionRule {
                atom: atom.clone(),
                address: dimensions
                    .iter()
                    .map(|&dim| {
                        if atom.contains(dim) {
                            AddressTerm::HashOfVar(dim)
                        } else {
                            AddressTerm::AnyBucket
                        }
                    })
                    .collect(),
            })
            .collect();
        Ok(HypercubePolicy {
            query: query.clone(),
            dimensions,
            inner: RuleBasedPolicy::new(rules, schemes)?,
        })
    }

    /// The policy with `buckets` buckets in every dimension, using seeded
    /// FNV hash functions (a "typical" Hypercube instantiation).
    pub fn uniform(
        query: &ConjunctiveQuery,
        buckets: usize,
    ) -> Result<HypercubePolicy, RulePolicyError> {
        let dims = query.variables().len();
        HypercubePolicy::new(
            query,
            (0..dims)
                .map(|i| HashScheme::Modulo {
                    buckets,
                    seed: i as u64,
                })
                .collect(),
        )
    }

    /// The policy with a per-dimension bucket count.
    pub fn with_buckets(
        query: &ConjunctiveQuery,
        buckets: &[usize],
    ) -> Result<HypercubePolicy, RulePolicyError> {
        HypercubePolicy::new(
            query,
            buckets
                .iter()
                .enumerate()
                .map(|(i, &b)| HashScheme::Modulo {
                    buckets: b,
                    seed: i as u64,
                })
                .collect(),
        )
    }

    /// The `(Q, I)`-scattered member of the family used in the proof of
    /// Lemma 5.7: every dimension uses the identity hash over `adom(I)`, so
    /// each node receives facts from at most one valuation.
    pub fn scattered_for(
        query: &ConjunctiveQuery,
        instance: &Instance,
    ) -> Result<HypercubePolicy, RulePolicyError> {
        let adom: Vec<_> = instance.adom().into_iter().collect();
        let dims = query.variables().len();
        HypercubePolicy::new(
            query,
            (0..dims)
                .map(|_| HashScheme::IdentityOver(adom.clone()))
                .collect(),
        )
    }

    /// The query the policy was built for.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The dimension order (query variables).
    pub fn dimensions(&self) -> &[Variable] {
        &self.dimensions
    }

    /// The underlying rule-based policy (the declarative specification).
    pub fn as_rules(&self) -> &RuleBasedPolicy {
        &self.inner
    }

    /// The node addressed by the hashes of the values of a valuation, i.e.
    /// the node `(h₁(V(x₁)), …, h_k(V(x_k)))` used in the `Q`-generous
    /// argument of Lemma 5.7. Returns `None` if some hash is undefined.
    pub fn node_for_valuation(&self, valuation: &cq::Valuation) -> Option<Node> {
        let mut address = Vec::with_capacity(self.dimensions.len());
        for (dim, scheme) in self.dimensions.iter().zip(self.inner.schemes()) {
            let value = valuation.get(*dim)?;
            address.push(scheme.bucket_of(value)?);
        }
        self.inner.node_at(&address)
    }
}

impl DistributionPolicy for HypercubePolicy {
    fn network(&self) -> &Network {
        self.inner.network()
    }

    fn nodes_for(&self, fact: &Fact) -> BTreeSet<Node> {
        self.inner.nodes_for(fact)
    }
}

/// The family `H_Q` of all Hypercube distribution policies of a query.
///
/// The family itself is infinite (one member per choice of hash functions);
/// this type provides the distinguished members needed by the paper's
/// arguments and by randomized validation.
#[derive(Clone, Debug)]
pub struct HypercubeFamily {
    query: ConjunctiveQuery,
}

impl HypercubeFamily {
    /// The Hypercube family of `query`.
    pub fn new(query: &ConjunctiveQuery) -> HypercubeFamily {
        HypercubeFamily {
            query: query.clone(),
        }
    }

    /// The query of the family.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The uniform member with `buckets` buckets per dimension.
    pub fn uniform_member(&self, buckets: usize) -> Result<HypercubePolicy, RulePolicyError> {
        HypercubePolicy::uniform(&self.query, buckets)
    }

    /// The `(Q, I)`-scattered member for `instance` (Lemma 5.7).
    pub fn scattered_member(
        &self,
        instance: &Instance,
    ) -> Result<HypercubePolicy, RulePolicyError> {
        HypercubePolicy::scattered_for(&self.query, instance)
    }

    /// A small set of structurally different members (different bucket
    /// counts), used by randomized validation of family-level properties.
    pub fn representative_members(
        &self,
        max_buckets: usize,
    ) -> Result<Vec<HypercubePolicy>, RulePolicyError> {
        (1..=max_buckets.max(1))
            .map(|b| self.uniform_member(b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::{evaluate, parse_instance, satisfying_valuations};

    fn triangle() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("T(x, y, z) :- E(x, y), E(y, z), E(z, x).").unwrap()
    }

    fn chain() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap()
    }

    #[test]
    fn network_size_is_bucket_product() {
        let q = triangle();
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        assert_eq!(p.network().len(), 8); // 2^3
        let p2 = HypercubePolicy::with_buckets(&q, &[2, 3, 1]).unwrap();
        assert_eq!(p2.network().len(), 6);
    }

    #[test]
    fn facts_of_unrelated_relations_are_skipped() {
        let q = chain();
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        assert!(p.nodes_for(&Fact::from_names("U", &["a", "b"])).is_empty());
        assert!(!p.nodes_for(&Fact::from_names("R", &["a", "b"])).is_empty());
    }

    #[test]
    fn hypercube_is_generous_for_every_satisfying_valuation() {
        // Lemma 5.7 (Q-generous): for every valuation V there is a node that
        // receives all facts of V(body_Q).
        let q = triangle();
        let i = parse_instance("E(a, b). E(b, c). E(c, a). E(a, a). E(b, d). E(d, b).").unwrap();
        for buckets in 1..=3 {
            let p = HypercubePolicy::uniform(&q, buckets).unwrap();
            for v in satisfying_valuations(&q, &i) {
                let required = v.required_facts(&q);
                let node = p
                    .node_for_valuation(&v)
                    .expect("modulo hashes are total, the node must exist");
                let nodes = p.meeting_nodes(&required).unwrap();
                assert!(
                    nodes.contains(&node),
                    "facts {required} do not meet at {node}"
                );
            }
        }
    }

    #[test]
    fn one_round_union_equals_centralized_result() {
        // Parallel-correctness of Q under its own hypercube policies,
        // checked directly on a concrete instance.
        let q = triangle();
        let i = parse_instance(
            "E(a, b). E(b, c). E(c, a). E(b, d). E(d, b). E(d, d). E(c, d). E(d, a).",
        )
        .unwrap();
        let expected = evaluate(&q, &i);
        for buckets in 1..=3 {
            let p = HypercubePolicy::uniform(&q, buckets).unwrap();
            let dist = p.distribute(&i);
            let mut union = Instance::new();
            for (_, chunk) in dist.chunks() {
                union.extend(evaluate(&q, chunk).facts().cloned());
            }
            assert_eq!(union, expected, "buckets={buckets}");
        }
    }

    #[test]
    fn scattered_member_puts_only_one_valuation_per_node() {
        // Lemma 5.7 (Q-scattered): with identity hashes over adom(I), each
        // node's chunk is contained in V(body_Q) for some valuation V.
        let q = chain();
        let i = parse_instance("R(a, b). R(b, c). S(b, c). S(c, a).").unwrap();
        let p = HypercubePolicy::scattered_for(&q, &i).unwrap();
        let dist = p.distribute(&i);
        for (node, chunk) in dist.chunks() {
            if chunk.is_empty() {
                continue;
            }
            // find a valuation (over adom) whose required facts cover the chunk
            let adom: Vec<_> = i.adom().into_iter().collect();
            let vars = q.variables();
            let assignments = cq::all_assignments(vars.len(), adom.len());
            let covered = assignments.iter().any(|assignment| {
                let v = cq::Valuation::from_pairs(
                    vars.iter()
                        .zip(assignment.iter())
                        .map(|(&var, &ai)| (var, adom[ai])),
                );
                let req = v.required_facts(&q);
                chunk.facts().all(|f| req.contains(f))
            });
            assert!(covered, "chunk at {node} mixes valuations: {chunk}");
        }
    }

    #[test]
    fn replication_grows_with_broadcast_dimensions() {
        // In a chain query R(x,y), S(y,z), hashing on 3 dimensions means each
        // R-fact is broadcast along the z dimension and each S-fact along x.
        let q = chain();
        let b = 3usize;
        let p = HypercubePolicy::uniform(&q, b).unwrap();
        let r_fact = Fact::from_names("R", &["a", "b"]);
        let s_fact = Fact::from_names("S", &["b", "c"]);
        assert_eq!(p.nodes_for(&r_fact).len(), b);
        assert_eq!(p.nodes_for(&s_fact).len(), b);
    }

    #[test]
    fn family_members_share_the_query() {
        let q = triangle();
        let family = HypercubeFamily::new(&q);
        let members = family.representative_members(3).unwrap();
        assert_eq!(members.len(), 3);
        for m in &members {
            assert_eq!(m.query(), &q);
        }
        assert_eq!(family.query(), &q);
    }

    #[test]
    fn single_bucket_hypercube_is_the_single_node_policy() {
        let q = chain();
        let p = HypercubePolicy::uniform(&q, 1).unwrap();
        assert_eq!(p.network().len(), 1);
        let f = Fact::from_names("R", &["a", "b"]);
        assert_eq!(p.nodes_for(&f).len(), 1);
    }
}
