//! Explicitly enumerated (finite) distribution policies — the class `Pfin`.

use std::collections::{BTreeMap, BTreeSet};

use cq::{Fact, Instance};

use crate::network::{Network, Node};
use crate::policy::{DistributionPolicy, FinitePolicy};

/// A distribution policy given by exhaustive enumeration of `(fact, nodes)`
/// pairs, plus a default node set for unlisted facts.
///
/// With an empty default (the usual case) this is exactly the class `Pfin`
/// of the paper: the fact universe `facts(P)` is the set of explicitly
/// listed facts with a non-empty node set. A non-empty default is used to
/// model the "send everything else everywhere" policies that appear in the
/// proofs of Lemma 4.2 and Proposition C.2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplicitPolicy {
    network: Network,
    assignments: BTreeMap<Fact, BTreeSet<Node>>,
    default_nodes: BTreeSet<Node>,
}

impl ExplicitPolicy {
    /// A policy over `network` that skips every fact (until assignments are added).
    pub fn new(network: Network) -> ExplicitPolicy {
        ExplicitPolicy {
            network,
            assignments: BTreeMap::new(),
            default_nodes: BTreeSet::new(),
        }
    }

    /// Sets the node set used for facts without an explicit assignment.
    pub fn with_default<I: IntoIterator<Item = Node>>(mut self, nodes: I) -> ExplicitPolicy {
        self.default_nodes = nodes.into_iter().collect();
        self
    }

    /// Assigns `fact` to exactly the given nodes (overwriting any previous
    /// assignment). Nodes are added to the network if missing.
    pub fn assign<I: IntoIterator<Item = Node>>(&mut self, fact: Fact, nodes: I) {
        let set: BTreeSet<Node> = nodes.into_iter().collect();
        for &n in &set {
            self.network.add(n);
        }
        self.assignments.insert(fact, set);
    }

    /// Explicitly skips `fact` (maps it to the empty node set).
    pub fn skip(&mut self, fact: Fact) {
        self.assignments.insert(fact, BTreeSet::new());
    }

    /// A policy that sends every fact of `universe` to every node.
    pub fn broadcast(network: &Network, universe: &Instance) -> ExplicitPolicy {
        let mut p = ExplicitPolicy::new(network.clone());
        for fact in universe.facts() {
            p.assign(fact.clone(), network.nodes());
        }
        p
    }

    /// A policy that distributes the facts of `universe` round-robin over the
    /// nodes of `network` (each fact to exactly one node).
    pub fn round_robin(network: &Network, universe: &Instance) -> ExplicitPolicy {
        let nodes: Vec<Node> = network.nodes().collect();
        let mut p = ExplicitPolicy::new(network.clone());
        for (i, fact) in universe.facts().enumerate() {
            p.assign(fact.clone(), [nodes[i % nodes.len()]]);
        }
        p
    }

    /// The single-node policy from the proof of Proposition C.2 (case m = 1):
    /// `skipped` is mapped to the empty set, every other fact (including
    /// unlisted ones) to the single node `n0`.
    pub fn skip_one(universe: &Instance, skipped: &Fact) -> ExplicitPolicy {
        let node = Node::numbered(0);
        let network = Network::new([node]);
        let mut p = ExplicitPolicy::new(network).with_default([node]);
        for fact in universe.facts() {
            if fact == skipped {
                p.skip(fact.clone());
            } else {
                p.assign(fact.clone(), [node]);
            }
        }
        p.skip(skipped.clone());
        p
    }

    /// The policy from the proofs of Lemma 4.2 and Proposition C.2
    /// (case m ≥ 2): for the facts `f₁, …, f_m` the network is
    /// `{κ₁, …, κ_m}`, `P(f_i) = N \ {κ_i}`, and every other fact is sent to
    /// all nodes.
    ///
    /// On any instance either all facts meet somewhere or the instance
    /// contains all of `facts`; no node ever holds all of `facts`.
    pub fn all_but_one(facts: &[Fact]) -> ExplicitPolicy {
        assert!(
            facts.len() >= 2,
            "all_but_one requires at least two facts (use skip_one for m = 1)"
        );
        let nodes: Vec<Node> = (0..facts.len()).map(Node::numbered).collect();
        let network = Network::new(nodes.iter().copied());
        let mut p = ExplicitPolicy::new(network.clone()).with_default(network.nodes());
        for (i, fact) in facts.iter().enumerate() {
            p.assign(
                fact.clone(),
                nodes
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, n)| n),
            );
        }
        p
    }

    /// The facts with explicit assignments (including skipped ones).
    pub fn listed_facts(&self) -> impl Iterator<Item = &Fact> + '_ {
        self.assignments.keys()
    }

    /// Number of explicit assignments.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the policy has no explicit assignments.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }
}

impl DistributionPolicy for ExplicitPolicy {
    fn network(&self) -> &Network {
        &self.network
    }

    fn nodes_for(&self, fact: &Fact) -> BTreeSet<Node> {
        self.assignments
            .get(fact)
            .cloned()
            .unwrap_or_else(|| self.default_nodes.clone())
    }
}

impl FinitePolicy for ExplicitPolicy {
    fn fact_universe(&self) -> Instance {
        Instance::from_facts(
            self.assignments
                .iter()
                .filter(|(_, nodes)| !nodes.is_empty())
                .map(|(f, _)| f.clone()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts3() -> Vec<Fact> {
        vec![
            Fact::from_names("R", &["a", "b"]),
            Fact::from_names("R", &["b", "c"]),
            Fact::from_names("R", &["c", "a"]),
        ]
    }

    #[test]
    fn broadcast_sends_everything_everywhere() {
        let network = Network::with_size(3);
        let universe = Instance::from_facts(facts3());
        let p = ExplicitPolicy::broadcast(&network, &universe);
        for f in universe.facts() {
            assert_eq!(p.nodes_for(f).len(), 3);
        }
        assert_eq!(p.fact_universe(), universe);
    }

    #[test]
    fn round_robin_assigns_each_fact_once() {
        let network = Network::with_size(2);
        let universe = Instance::from_facts(facts3());
        let p = ExplicitPolicy::round_robin(&network, &universe);
        let mut counts = [0usize; 2];
        for f in universe.facts() {
            let nodes = p.nodes_for(f);
            assert_eq!(nodes.len(), 1);
            if nodes.contains(&Node::numbered(0)) {
                counts[0] += 1;
            } else {
                counts[1] += 1;
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), 3);
        assert!(counts[0] >= 1 && counts[1] >= 1);
    }

    #[test]
    fn unlisted_facts_use_the_default() {
        let network = Network::with_size(2);
        let p = ExplicitPolicy::new(network.clone());
        assert!(p.nodes_for(&Fact::from_names("R", &["x", "y"])).is_empty());

        let p2 = ExplicitPolicy::new(network.clone()).with_default(network.nodes());
        assert_eq!(p2.nodes_for(&Fact::from_names("R", &["x", "y"])).len(), 2);
    }

    #[test]
    fn skip_one_policy_shape() {
        let facts = facts3();
        let universe = Instance::from_facts(facts.clone());
        let p = ExplicitPolicy::skip_one(&universe, &facts[0]);
        assert!(p.nodes_for(&facts[0]).is_empty());
        assert_eq!(p.nodes_for(&facts[1]).len(), 1);
        // unlisted facts still go to the single node
        assert_eq!(p.nodes_for(&Fact::from_names("S", &["z"])).len(), 1);
        // the skipped fact is not part of facts(P)
        assert!(!p.fact_universe().contains(&facts[0]));
    }

    #[test]
    fn all_but_one_policy_never_gathers_all_facts() {
        let facts = facts3();
        let p = ExplicitPolicy::all_but_one(&facts);
        assert_eq!(p.network().len(), 3);
        // every node misses exactly one of the listed facts
        for node in p.network().nodes() {
            let missing = facts
                .iter()
                .filter(|f| !p.nodes_for(f).contains(&node))
                .count();
            assert_eq!(missing, 1);
        }
        // the full set of listed facts never meets
        let all = Instance::from_facts(facts.clone());
        assert!(!p.facts_meet(&all));
        // but any proper subset meets somewhere
        let pair = Instance::from_facts(facts[..2].to_vec());
        assert!(p.facts_meet(&pair));
        // unlisted facts go everywhere
        assert_eq!(p.nodes_for(&Fact::from_names("S", &["q"])).len(), 3);
    }

    #[test]
    fn assign_overwrites_and_grows_network() {
        let mut p = ExplicitPolicy::new(Network::with_size(1));
        let f = Fact::from_names("R", &["a", "b"]);
        p.assign(f.clone(), [Node::new("extra")]);
        assert!(p.network().contains(Node::new("extra")));
        assert_eq!(p.nodes_for(&f).len(), 1);
        p.assign(f.clone(), [Node::numbered(0), Node::new("extra")]);
        assert_eq!(p.nodes_for(&f).len(), 2);
        p.skip(f.clone());
        assert!(p.nodes_for(&f).is_empty());
        assert!(p.fact_universe().is_empty());
    }
}
