//! # distribution — distribution policies and one-round evaluation
//!
//! This crate implements the data-distribution side of
//! *"Parallel-Correctness and Transferability for Conjunctive Queries"*
//! (PODS 2015):
//!
//! * [`Node`]s and [`Network`]s of computing nodes,
//! * the [`DistributionPolicy`] trait — a total function mapping facts to
//!   sets of nodes (Section 2 of the paper), with finite, explicitly
//!   enumerated policies ([`ExplicitPolicy`], the class `Pfin`),
//! * the declarative, rule-based specification formalism of Section 5.2
//!   ([`RuleBasedPolicy`], [`DistributionRule`]) with `bucket`/`bucket*`
//!   predicates realized as [`HashScheme`]s,
//! * [`HypercubePolicy`] and [`HypercubeFamily`] — the Hypercube
//!   distributions of Section 5.2,
//! * [`Distribution`] — the result of reshuffling an instance
//!   (`dist_P(I)`), with load and replication statistics, and
//!   [`ChunkStream`] — its streaming counterpart of borrowed per-node fact
//!   slices (owned chunks are materialized one at a time, on demand),
//! * [`OneRoundEngine`] — the simulated one-round evaluation algorithm:
//!   reshuffle (optionally sharded over threads and/or streamed), evaluate
//!   locally at every node (optionally on a bounded worker pool), union the
//!   results,
//! * [`MultiRoundEngine`] — the iterated (MPC-style multi-round) algorithm:
//!   distribute→evaluate cycles under a per-round [`RoundSchedule`], with
//!   an optional feedback relation, fixpoint detection and a round cap;
//!   [`MultiRoundEngine::semi_naive`] switches the rounds to **incremental
//!   mode** — only the facts new since the previous round are reshuffled
//!   (`Transport::send_delta`), nodes keep their accumulated state across
//!   rounds, and local evaluation is one semi-naive differential pass
//!   instead of a full re-evaluation,
//! * [`Transport`] — the pluggable chunk-shipping seam between the engines
//!   and wherever local evaluation happens: [`InMemoryTransport`] is the
//!   classic in-process path refactored behind the trait, and
//!   `wire::ProcessTransport` ships binary-encoded chunks to
//!   `pcq-analyze worker` subprocesses over stdio.
//!
//! ## Example
//!
//! ```
//! use cq::{ConjunctiveQuery, parse_instance, evaluate};
//! use distribution::{HypercubePolicy, OneRoundEngine};
//!
//! let q = ConjunctiveQuery::parse("T(x, y, z) :- E(x, y), E(y, z), E(z, x).").unwrap();
//! let i = parse_instance("E(a, b). E(b, c). E(c, a). E(a, d). E(d, a).").unwrap();
//!
//! let policy = HypercubePolicy::uniform(&q, 2).unwrap();
//! let engine = OneRoundEngine::new(&policy);
//! let outcome = engine.evaluate(&q, &i);
//!
//! // Hypercube distributions are parallel-correct for their query:
//! assert_eq!(outcome.result, evaluate(&q, &i));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distribute;
mod engine;
mod explicit;
mod hash;
mod hypercube;
mod network;
mod policy;
mod rounds;
mod rules;
mod transport;

pub use distribute::{ChunkStream, Distribution, DistributionStats};
pub use engine::{OneRoundEngine, OneRoundOutcome};
pub use explicit::ExplicitPolicy;
pub use hash::{fnv1a, HashScheme};
pub use hypercube::{HypercubeFamily, HypercubePolicy};
pub use network::{Network, Node};
pub use policy::{DistributionPolicy, FinitePolicy};
pub use rounds::{
    IteratedFixpoint, MultiQueryOutcome, MultiRoundEngine, MultiRoundOutcome, RoundSchedule,
    TransferOracle,
};
pub use rules::{AddressTerm, DistributionRule, RuleBasedPolicy, RulePolicyError};
pub use transport::{InMemoryTransport, NodeResult, Transport, TransportError};
