//! The distribution-policy abstraction.

use std::collections::BTreeSet;

use cq::{Fact, Instance};

use crate::distribute::{ChunkStream, Distribution};
use crate::network::{Network, Node};

/// A distribution policy `P` for a database schema and a network: a total
/// function mapping facts to sets of nodes (Section 2 of the paper).
///
/// Policies may *skip* facts by mapping them to the empty set of nodes (as
/// Hypercube distributions do for facts irrelevant to their query).
///
/// Policies are required to be [`Sync`]: the reshuffle phase shards
/// `nodes_for` calls across worker threads ([`distribute_parallel`]) and the
/// evaluation engine shares the policy with its worker pool.
///
/// [`distribute_parallel`]: DistributionPolicy::distribute_parallel
pub trait DistributionPolicy: Sync {
    /// The network the policy distributes over.
    fn network(&self) -> &Network;

    /// The set of nodes responsible for `fact` (`P(f)`).
    fn nodes_for(&self, fact: &Fact) -> BTreeSet<Node>;

    /// Distributes an instance: computes `dist_P(I)`, the function mapping
    /// every node to its data chunk.
    fn distribute(&self, instance: &Instance) -> Distribution {
        let mut dist = Distribution::empty(self.network());
        for fact in instance.facts() {
            for node in self.nodes_for(fact) {
                dist.assign(node, fact.clone());
            }
        }
        dist
    }

    /// Like [`DistributionPolicy::distribute`], but shards the input facts
    /// over up to `workers` scoped threads, each computing `nodes_for` for
    /// its contiguous shard. The resulting distribution is identical to the
    /// single-threaded one; only the reshuffle wall-clock changes. With
    /// `workers <= 1` this is exactly the sequential `distribute`.
    fn distribute_parallel(&self, instance: &Instance, workers: usize) -> Distribution {
        if workers <= 1 {
            self.distribute(instance)
        } else {
            ChunkStream::build(self, instance, workers).materialize()
        }
    }

    /// Streaming reshuffle: computes `dist_P(I)` as borrowed per-node fact
    /// slices instead of owned chunks (see [`ChunkStream`]). With
    /// `workers > 1` the `nodes_for` calls are sharded over that many
    /// threads, as in [`DistributionPolicy::distribute_parallel`].
    fn distribute_stream<'a>(&self, instance: &'a Instance, workers: usize) -> ChunkStream<'a> {
        ChunkStream::build(self, instance, workers)
    }

    /// The data chunk of a single node, computed without materializing (or
    /// even visiting) any other node's chunk: the lazy counterpart of
    /// `distribute(instance).chunk(node)`.
    fn for_node_lazy(&self, instance: &Instance, node: Node) -> Instance {
        Instance::from_facts(
            instance
                .facts()
                .filter(|f| self.nodes_for(f).contains(&node))
                .cloned(),
        )
    }

    /// Whether all facts required by a set meet at some node:
    /// `⋂_{f ∈ facts} P(f) ≠ ∅`.
    fn facts_meet(&self, facts: &Instance) -> bool {
        self.meeting_nodes(facts).is_some_and(|s| !s.is_empty())
    }

    /// The nodes at which all `facts` meet, or `None` when `facts` is empty
    /// (in which case they trivially meet everywhere).
    fn meeting_nodes(&self, facts: &Instance) -> Option<BTreeSet<Node>> {
        let mut iter = facts.facts();
        let first = iter.next()?;
        let mut nodes = self.nodes_for(first);
        for fact in iter {
            if nodes.is_empty() {
                break;
            }
            let next = self.nodes_for(fact);
            nodes = nodes.intersection(&next).copied().collect();
        }
        Some(nodes)
    }
}

/// A distribution policy with a finite, known fact universe (`Pfin` in the
/// paper): `facts(P)` — the facts `f` with `P(f) ≠ ∅` — can be enumerated.
pub trait FinitePolicy: DistributionPolicy {
    /// The fact universe `facts(P)`.
    fn fact_universe(&self) -> Instance;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitPolicy;

    #[test]
    fn meeting_nodes_intersects_assignments() {
        let network = Network::with_size(3);
        let f1 = Fact::from_names("R", &["a", "b"]);
        let f2 = Fact::from_names("R", &["b", "c"]);
        let mut policy = ExplicitPolicy::new(network);
        policy.assign(f1.clone(), [Node::numbered(0), Node::numbered(1)]);
        policy.assign(f2.clone(), [Node::numbered(1), Node::numbered(2)]);

        let both = Instance::from_facts([f1.clone(), f2.clone()]);
        let nodes = policy.meeting_nodes(&both).unwrap();
        assert_eq!(nodes, [Node::numbered(1)].into_iter().collect());
        assert!(policy.facts_meet(&both));

        let empty = Instance::new();
        assert!(policy.meeting_nodes(&empty).is_none());
    }

    #[test]
    fn distribute_builds_chunks_per_node() {
        let network = Network::with_size(2);
        let f1 = Fact::from_names("R", &["a", "b"]);
        let f2 = Fact::from_names("R", &["b", "c"]);
        let mut policy = ExplicitPolicy::new(network);
        policy.assign(f1.clone(), [Node::numbered(0)]);
        policy.assign(f2.clone(), [Node::numbered(0), Node::numbered(1)]);

        let inst = Instance::from_facts([f1.clone(), f2.clone()]);
        let dist = policy.distribute(&inst);
        assert_eq!(dist.chunk(Node::numbered(0)).len(), 2);
        assert_eq!(dist.chunk(Node::numbered(1)).len(), 1);
        assert!(dist.chunk(Node::numbered(1)).contains(&f2));
    }
}
