//! Computing nodes and networks.

use std::collections::BTreeSet;
use std::fmt;

use cq::Symbol;

/// A computing node (server).
///
/// The paper models nodes as values from **dom**; here they are interned
/// names, so they are `Copy` and cheap to store in sets.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Node(Symbol);

impl Node {
    /// A node with the given name.
    pub fn new(name: &str) -> Node {
        Node(Symbol::new(name))
    }

    /// The `index`-th node of the standard naming scheme (`n0`, `n1`, …).
    pub fn numbered(index: usize) -> Node {
        Node(Symbol::new(&format!("n{index}")))
    }

    /// A node named after a Hypercube address, e.g. `node(1,0,2)`.
    pub fn from_address(address: &[usize]) -> Node {
        let parts: Vec<String> = address.iter().map(|a| a.to_string()).collect();
        Node(Symbol::new(&format!("node({})", parts.join(","))))
    }

    /// The node name.
    pub fn as_str(self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Node({})", self.as_str())
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Node {
    fn from(value: &str) -> Self {
        Node::new(value)
    }
}

/// A non-empty finite set of computing nodes.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Network {
    nodes: BTreeSet<Node>,
}

impl Network {
    /// Builds a network from nodes.
    pub fn new<I: IntoIterator<Item = Node>>(nodes: I) -> Network {
        Network {
            nodes: nodes.into_iter().collect(),
        }
    }

    /// A network of `size` nodes named `n0 … n{size-1}`.
    pub fn with_size(size: usize) -> Network {
        Network {
            nodes: (0..size).map(Node::numbered).collect(),
        }
    }

    /// Adds a node.
    pub fn add(&mut self, node: Node) {
        self.nodes.insert(node);
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the network contains `node`.
    pub fn contains(&self, node: Node) -> bool {
        self.nodes.contains(&node)
    }

    /// Iterates over the nodes in name order.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        self.nodes.iter().copied()
    }

    /// The nodes as an ordered set.
    pub fn to_set(&self) -> BTreeSet<Node> {
        self.nodes.clone()
    }
}

impl FromIterator<Node> for Network {
    fn from_iter<T: IntoIterator<Item = Node>>(iter: T) -> Self {
        Network::new(iter)
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbered_nodes_are_stable() {
        assert_eq!(Node::numbered(3), Node::new("n3"));
        assert_eq!(Node::numbered(3).as_str(), "n3");
    }

    #[test]
    fn network_with_size_has_distinct_nodes() {
        let n = Network::with_size(5);
        assert_eq!(n.len(), 5);
        assert!(n.contains(Node::numbered(0)));
        assert!(n.contains(Node::numbered(4)));
        assert!(!n.contains(Node::numbered(5)));
    }

    #[test]
    fn address_nodes_encode_their_coordinates() {
        let n = Node::from_address(&[1, 0, 2]);
        assert_eq!(n.as_str(), "node(1,0,2)");
        assert_eq!(n, Node::from_address(&[1, 0, 2]));
        assert_ne!(n, Node::from_address(&[0, 1, 2]));
    }

    #[test]
    fn network_is_a_set() {
        let n = Network::new([Node::new("a"), Node::new("a"), Node::new("b")]);
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn display_formats() {
        let n = Network::new([Node::new("a"), Node::new("b")]);
        assert_eq!(n.to_string(), "{a, b}");
    }
}
