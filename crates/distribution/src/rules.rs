//! Declarative, rule-based distribution policies (Section 5.2 of the paper).
//!
//! A policy is specified by rules of the form
//!
//! ```text
//! T_R(z₁, …, z_k; y₁, …, y_m) ← R(y₁, …, y_m), B₁, …, B_k
//! ```
//!
//! where each `B_i` is either `bucket_i(x_i, z_i)` — the i-th address
//! component is the hash of the value bound to `x_i` — or `bucket*_i(z_i)` —
//! the i-th address component ranges over all buckets. A fact matching the
//! rule body is sent to every node whose address satisfies the constraints.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use cq::{Atom, Fact, Value, Variable};

use crate::hash::HashScheme;
use crate::network::{Network, Node};
use crate::policy::DistributionPolicy;

/// One component of a rule's node address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AddressTerm {
    /// `bucket_i(x, z_i)`: the address component is the hash of the value
    /// bound to the variable `x` (which must occur in the rule's atom).
    HashOfVar(Variable),
    /// `bucket*_i(z_i)`: the address component is unconstrained.
    AnyBucket,
}

/// A single distribution rule: facts matching `atom` are sent to all nodes
/// whose address satisfies the `address` constraints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistributionRule {
    /// The guard atom `R(y₁, …, y_m)`; repeated variables require equal values.
    pub atom: Atom,
    /// One address term per dimension of the address space.
    pub address: Vec<AddressTerm>,
}

/// Errors raised when constructing a [`RuleBasedPolicy`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RulePolicyError {
    /// A rule's address has a different number of components than the policy
    /// has hash schemes (dimensions).
    DimensionMismatch {
        /// Index of the offending rule.
        rule: usize,
        /// Number of address components in the rule.
        found: usize,
        /// Number of dimensions of the policy.
        expected: usize,
    },
    /// A `HashOfVar` component refers to a variable that does not occur in
    /// the rule's atom, so no value would be available to hash.
    UnboundAddressVariable {
        /// Index of the offending rule.
        rule: usize,
        /// The unbound variable.
        variable: Variable,
    },
    /// The address space (product of bucket counts) is empty or too large to
    /// materialize as a network.
    AddressSpaceTooLarge {
        /// The product of bucket counts.
        size: usize,
        /// The maximum supported network size.
        limit: usize,
    },
}

impl fmt::Display for RulePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RulePolicyError::DimensionMismatch {
                rule,
                found,
                expected,
            } => write!(
                f,
                "rule {rule} has {found} address components, expected {expected}"
            ),
            RulePolicyError::UnboundAddressVariable { rule, variable } => write!(
                f,
                "rule {rule} hashes variable {variable} which does not occur in its atom"
            ),
            RulePolicyError::AddressSpaceTooLarge { size, limit } => {
                write!(f, "address space of size {size} exceeds the limit {limit}")
            }
        }
    }
}

impl std::error::Error for RulePolicyError {}

/// Maximum number of nodes a rule-based policy will materialize.
const MAX_NETWORK_SIZE: usize = 1 << 20;

/// A distribution policy defined by declarative rules over a hashed address
/// space (the specification formalism of Section 5.2).
#[derive(Clone, Debug)]
pub struct RuleBasedPolicy {
    rules: Vec<DistributionRule>,
    schemes: Vec<HashScheme>,
    network: Network,
    nodes_by_address: BTreeMap<Vec<usize>, Node>,
}

impl RuleBasedPolicy {
    /// Builds a policy from rules and one hash scheme per address dimension.
    pub fn new(
        rules: Vec<DistributionRule>,
        schemes: Vec<HashScheme>,
    ) -> Result<RuleBasedPolicy, RulePolicyError> {
        for (i, rule) in rules.iter().enumerate() {
            if rule.address.len() != schemes.len() {
                return Err(RulePolicyError::DimensionMismatch {
                    rule: i,
                    found: rule.address.len(),
                    expected: schemes.len(),
                });
            }
            for term in &rule.address {
                if let AddressTerm::HashOfVar(v) = term {
                    if !rule.atom.contains(*v) {
                        return Err(RulePolicyError::UnboundAddressVariable {
                            rule: i,
                            variable: *v,
                        });
                    }
                }
            }
        }
        let size: usize = schemes.iter().map(HashScheme::buckets).product();
        if size == 0 || size > MAX_NETWORK_SIZE {
            return Err(RulePolicyError::AddressSpaceTooLarge {
                size,
                limit: MAX_NETWORK_SIZE,
            });
        }
        let mut nodes_by_address = BTreeMap::new();
        let mut network = Network::default();
        for address in cartesian(&schemes.iter().map(HashScheme::buckets).collect::<Vec<_>>()) {
            let node = Node::from_address(&address);
            network.add(node);
            nodes_by_address.insert(address, node);
        }
        Ok(RuleBasedPolicy {
            rules,
            schemes,
            network,
            nodes_by_address,
        })
    }

    /// The rules of the policy.
    pub fn rules(&self) -> &[DistributionRule] {
        &self.rules
    }

    /// The hash schemes (one per address dimension).
    pub fn schemes(&self) -> &[HashScheme] {
        &self.schemes
    }

    /// The node for an explicit address, if it exists.
    pub fn node_at(&self, address: &[usize]) -> Option<Node> {
        self.nodes_by_address.get(address).copied()
    }

    /// Matches `fact` against `atom`, returning the variable binding if the
    /// relation, arity and repeated-variable constraints are respected.
    fn unify(atom: &Atom, fact: &Fact) -> Option<BTreeMap<Variable, Value>> {
        if atom.relation != fact.relation || atom.arity() != fact.arity() {
            return None;
        }
        let mut binding = BTreeMap::new();
        for (&var, &value) in atom.args.iter().zip(fact.values.iter()) {
            match binding.get(&var) {
                Some(&existing) if existing != value => return None,
                Some(_) => {}
                None => {
                    binding.insert(var, value);
                }
            }
        }
        Some(binding)
    }
}

/// Enumerates the cartesian product `0..sizes[0] × 0..sizes[1] × …`.
fn cartesian(sizes: &[usize]) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    for &size in sizes {
        let mut next = Vec::with_capacity(out.len() * size);
        for prefix in &out {
            for v in 0..size {
                let mut item = prefix.clone();
                item.push(v);
                next.push(item);
            }
        }
        out = next;
    }
    out
}

impl DistributionPolicy for RuleBasedPolicy {
    fn network(&self) -> &Network {
        &self.network
    }

    fn nodes_for(&self, fact: &Fact) -> BTreeSet<Node> {
        let mut nodes = BTreeSet::new();
        for rule in &self.rules {
            let Some(binding) = RuleBasedPolicy::unify(&rule.atom, fact) else {
                continue;
            };
            // Determine, per dimension, the allowed buckets.
            let mut allowed: Vec<Vec<usize>> = Vec::with_capacity(rule.address.len());
            let mut matches = true;
            for (term, scheme) in rule.address.iter().zip(self.schemes.iter()) {
                match term {
                    AddressTerm::HashOfVar(var) => {
                        let value = binding[var];
                        match scheme.bucket_of(value) {
                            Some(b) => allowed.push(vec![b]),
                            None => {
                                // hash undefined on this value: rule does not fire
                                matches = false;
                                break;
                            }
                        }
                    }
                    AddressTerm::AnyBucket => allowed.push((0..scheme.buckets()).collect()),
                }
            }
            if !matches {
                continue;
            }
            for address in cartesian_choices(&allowed) {
                if let Some(node) = self.nodes_by_address.get(&address) {
                    nodes.insert(*node);
                }
            }
        }
        nodes
    }
}

/// Enumerates all choices of one element per inner vector.
fn cartesian_choices(allowed: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    for choices in allowed {
        let mut next = Vec::with_capacity(out.len() * choices.len());
        for prefix in &out {
            for &v in choices {
                let mut item = prefix.clone();
                item.push(v);
                next.push(item);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::Instance;

    fn rule(atom: Atom, address: Vec<AddressTerm>) -> DistributionRule {
        DistributionRule { atom, address }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let r = rule(
            Atom::from_names("R", &["x", "y"]),
            vec![AddressTerm::AnyBucket],
        );
        let err = RuleBasedPolicy::new(
            vec![r],
            vec![
                HashScheme::Modulo {
                    buckets: 2,
                    seed: 0,
                },
                HashScheme::Modulo {
                    buckets: 2,
                    seed: 1,
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RulePolicyError::DimensionMismatch { .. }));
    }

    #[test]
    fn unbound_hash_variable_is_rejected() {
        let r = rule(
            Atom::from_names("R", &["x", "y"]),
            vec![AddressTerm::HashOfVar(Variable::new("z"))],
        );
        let err = RuleBasedPolicy::new(
            vec![r],
            vec![HashScheme::Modulo {
                buckets: 2,
                seed: 0,
            }],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RulePolicyError::UnboundAddressVariable { .. }
        ));
    }

    #[test]
    fn single_dimension_hash_partitioning() {
        // One rule: R(x, y) hashed on x over 2 buckets.
        let r = rule(
            Atom::from_names("R", &["x", "y"]),
            vec![AddressTerm::HashOfVar(Variable::new("x"))],
        );
        let p = RuleBasedPolicy::new(
            vec![r],
            vec![HashScheme::Modulo {
                buckets: 2,
                seed: 0,
            }],
        )
        .unwrap();
        assert_eq!(p.network().len(), 2);

        let f1 = Fact::from_names("R", &["a", "b"]);
        let f2 = Fact::from_names("R", &["a", "c"]);
        let f3 = Fact::from_names("S", &["a", "b"]);
        // facts with the same join key go to the same single node
        assert_eq!(p.nodes_for(&f1).len(), 1);
        assert_eq!(p.nodes_for(&f1), p.nodes_for(&f2));
        // facts of other relations are skipped
        assert!(p.nodes_for(&f3).is_empty());
    }

    #[test]
    fn any_bucket_broadcasts_along_that_dimension() {
        let r = rule(
            Atom::from_names("R", &["x"]),
            vec![
                AddressTerm::HashOfVar(Variable::new("x")),
                AddressTerm::AnyBucket,
            ],
        );
        let p = RuleBasedPolicy::new(
            vec![r],
            vec![
                HashScheme::Modulo {
                    buckets: 2,
                    seed: 0,
                },
                HashScheme::Modulo {
                    buckets: 3,
                    seed: 1,
                },
            ],
        )
        .unwrap();
        assert_eq!(p.network().len(), 6);
        let f = Fact::from_names("R", &["a"]);
        // constrained in dim 0, broadcast over the 3 buckets of dim 1
        assert_eq!(p.nodes_for(&f).len(), 3);
    }

    #[test]
    fn repeated_variables_require_equal_values() {
        let r = rule(
            Atom::from_names("R", &["x", "x"]),
            vec![AddressTerm::HashOfVar(Variable::new("x"))],
        );
        let p = RuleBasedPolicy::new(
            vec![r],
            vec![HashScheme::Modulo {
                buckets: 4,
                seed: 0,
            }],
        )
        .unwrap();
        assert_eq!(p.nodes_for(&Fact::from_names("R", &["a", "a"])).len(), 1);
        assert!(p.nodes_for(&Fact::from_names("R", &["a", "b"])).is_empty());
    }

    #[test]
    fn partial_hash_functions_skip_unknown_values() {
        let r = rule(
            Atom::from_names("R", &["x", "y"]),
            vec![AddressTerm::HashOfVar(Variable::new("x"))],
        );
        let p = RuleBasedPolicy::new(
            vec![r],
            vec![HashScheme::IdentityOver(vec![Value::new("a")])],
        )
        .unwrap();
        assert_eq!(p.nodes_for(&Fact::from_names("R", &["a", "b"])).len(), 1);
        assert!(p.nodes_for(&Fact::from_names("R", &["z", "b"])).is_empty());
    }

    #[test]
    fn multiple_rules_accumulate_nodes() {
        // Two rules for the same relation hashed on different attributes
        // (this is what a Hypercube policy for R(x,y), S(y,z) looks like on R).
        let r1 = rule(
            Atom::from_names("R", &["x", "y"]),
            vec![
                AddressTerm::HashOfVar(Variable::new("x")),
                AddressTerm::AnyBucket,
            ],
        );
        let r2 = rule(
            Atom::from_names("R", &["x", "y"]),
            vec![
                AddressTerm::AnyBucket,
                AddressTerm::HashOfVar(Variable::new("y")),
            ],
        );
        let p = RuleBasedPolicy::new(
            vec![r1, r2],
            vec![
                HashScheme::Modulo {
                    buckets: 2,
                    seed: 0,
                },
                HashScheme::Modulo {
                    buckets: 2,
                    seed: 1,
                },
            ],
        )
        .unwrap();
        let f = Fact::from_names("R", &["a", "b"]);
        let nodes = p.nodes_for(&f);
        // rule 1 contributes a row of the grid (2 nodes), rule 2 a column (2 nodes),
        // overlapping in at most one node: between 3 and 4 nodes in total.
        assert!(nodes.len() >= 3 && nodes.len() <= 4, "got {}", nodes.len());
    }

    #[test]
    fn distribute_covers_all_matching_facts() {
        let r = rule(
            Atom::from_names("R", &["x", "y"]),
            vec![AddressTerm::HashOfVar(Variable::new("x"))],
        );
        let p = RuleBasedPolicy::new(
            vec![r],
            vec![HashScheme::Modulo {
                buckets: 3,
                seed: 0,
            }],
        )
        .unwrap();
        let inst = Instance::from_facts([
            Fact::from_names("R", &["a", "b"]),
            Fact::from_names("R", &["b", "c"]),
            Fact::from_names("R", &["c", "d"]),
            Fact::from_names("S", &["ignored"]),
        ]);
        let dist = p.distribute(&inst);
        let stats = dist.stats(&inst);
        assert_eq!(stats.distinct_assigned, 3);
        assert_eq!(stats.skipped, 1);
    }
}
