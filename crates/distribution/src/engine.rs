//! The simulated one-round evaluation algorithm.
//!
//! Given a parallel-correct query/policy pair, the one-round algorithm of the
//! paper (Section 3) proceeds as: reshuffle the input according to the
//! policy, evaluate the query locally at every node without communication,
//! and take the union of the local results. This module simulates that
//! algorithm in memory, optionally evaluating the per-node chunks on OS
//! threads, and reports communication/load statistics.

use std::collections::BTreeMap;

use cq::{evaluate, ConjunctiveQuery, Instance};

use crate::distribute::DistributionStats;
use crate::network::Node;
use crate::policy::DistributionPolicy;

/// The outcome of a one-round evaluation.
#[derive(Clone, Debug)]
pub struct OneRoundOutcome {
    /// The union of the per-node results.
    pub result: Instance,
    /// Output size at each node.
    pub per_node_output: BTreeMap<Node, usize>,
    /// Communication/load statistics of the reshuffle phase.
    pub stats: DistributionStats,
}

impl OneRoundOutcome {
    /// The largest per-node output size.
    pub fn max_node_output(&self) -> usize {
        self.per_node_output.values().copied().max().unwrap_or(0)
    }
}

/// A simulated cluster executing the one-round algorithm for a policy.
pub struct OneRoundEngine<'a, P: DistributionPolicy + ?Sized> {
    policy: &'a P,
    parallel: bool,
}

impl<'a, P: DistributionPolicy + ?Sized> OneRoundEngine<'a, P> {
    /// Creates an engine over the given policy (sequential local evaluation).
    pub fn new(policy: &'a P) -> OneRoundEngine<'a, P> {
        OneRoundEngine {
            policy,
            parallel: false,
        }
    }

    /// Evaluates the per-node chunks on OS threads (one thread per node, in
    /// waves), simulating the communication-free parallel step.
    pub fn parallel(mut self, enabled: bool) -> Self {
        self.parallel = enabled;
        self
    }

    /// Runs the one-round algorithm for `query` on `instance`.
    pub fn evaluate(&self, query: &ConjunctiveQuery, instance: &Instance) -> OneRoundOutcome {
        let distribution = self.policy.distribute(instance);
        let stats = distribution.stats(instance);
        let chunks: Vec<(Node, &Instance)> = distribution.chunks().collect();

        let local_results: Vec<(Node, Instance)> = if self.parallel && chunks.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|(node, chunk)| {
                        let node = *node;
                        scope.spawn(move || (node, evaluate(query, chunk)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("local evaluation panicked"))
                    .collect()
            })
        } else {
            chunks
                .iter()
                .map(|(node, chunk)| (*node, evaluate(query, chunk)))
                .collect()
        };

        let mut result = Instance::new();
        let mut per_node_output = BTreeMap::new();
        for (node, local) in local_results {
            per_node_output.insert(node, local.len());
            result.extend(local.facts().cloned());
        }
        OneRoundOutcome {
            result,
            per_node_output,
            stats,
        }
    }

    /// Whether the one-round result equals the centralized result on this
    /// instance (Definition 3.1: parallel-correctness *on* an instance).
    pub fn is_correct_on(&self, query: &ConjunctiveQuery, instance: &Instance) -> bool {
        self.evaluate(query, instance).result == evaluate(query, instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitPolicy;
    use crate::hypercube::HypercubePolicy;
    use crate::network::Network;
    use cq::{parse_instance, Fact};

    fn chain_query() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap()
    }

    #[test]
    fn broadcast_policy_is_always_correct() {
        let q = chain_query();
        let i = parse_instance("R(a, b). R(b, c). S(b, c). S(c, d).").unwrap();
        let network = Network::with_size(4);
        let p = ExplicitPolicy::broadcast(&network, &i);
        let engine = OneRoundEngine::new(&p);
        assert!(engine.is_correct_on(&q, &i));
        let outcome = engine.evaluate(&q, &i);
        assert_eq!(outcome.stats.replication_factor, 4.0);
    }

    #[test]
    fn round_robin_policy_loses_answers() {
        // Splitting joining facts over different nodes breaks the join.
        let q = chain_query();
        let i = parse_instance("R(a, b). S(b, c).").unwrap();
        let network = Network::with_size(2);
        let p = ExplicitPolicy::round_robin(&network, &i);
        let engine = OneRoundEngine::new(&p);
        let outcome = engine.evaluate(&q, &i);
        assert!(outcome.result.is_empty());
        assert!(!engine.is_correct_on(&q, &i));
    }

    #[test]
    fn hypercube_engine_matches_centralized_and_reports_stats() {
        let q = chain_query();
        let i = parse_instance(
            "R(a, b). R(b, c). R(c, d). R(d, e). S(b, x). S(c, y). S(d, z). S(e, w).",
        )
        .unwrap();
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let engine = OneRoundEngine::new(&p);
        let outcome = engine.evaluate(&q, &i);
        assert_eq!(outcome.result, cq::evaluate(&q, &i));
        assert_eq!(outcome.stats.skipped, 0);
        assert!(outcome.stats.max_load <= i.len());
        assert!(outcome.max_node_output() <= outcome.result.len());
    }

    #[test]
    fn parallel_and_sequential_execution_agree() {
        let q = ConjunctiveQuery::parse("T(x, y, z) :- E(x, y), E(y, z), E(z, x).").unwrap();
        let i = parse_instance(
            "E(a, b). E(b, c). E(c, a). E(b, d). E(d, b). E(d, d). E(c, d). E(d, a). E(a, c).",
        )
        .unwrap();
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let seq = OneRoundEngine::new(&p).evaluate(&q, &i);
        let par = OneRoundEngine::new(&p).parallel(true).evaluate(&q, &i);
        assert_eq!(seq.result, par.result);
        assert_eq!(seq.per_node_output, par.per_node_output);
    }

    #[test]
    fn per_node_outputs_sum_to_at_least_the_result() {
        let q = chain_query();
        let i = parse_instance("R(a, b). S(b, c). R(c, b). S(b, a).").unwrap();
        let network = Network::with_size(3);
        let p = ExplicitPolicy::broadcast(&network, &i);
        let outcome = OneRoundEngine::new(&p).evaluate(&q, &i);
        let total: usize = outcome.per_node_output.values().sum();
        assert!(total >= outcome.result.len());
        assert!(outcome.per_node_output.keys().all(|n| network.contains(*n)));
        // sanity: broadcast gives every node the full result
        assert!(outcome
            .per_node_output
            .values()
            .all(|&c| c == outcome.result.len()));
        let _ = Fact::from_names("T", &["a", "c"]);
    }
}
