//! The simulated one-round evaluation algorithm.
//!
//! Given a parallel-correct query/policy pair, the one-round algorithm of the
//! paper (Section 3) proceeds as: reshuffle the input according to the
//! policy, evaluate the query locally at every node without communication,
//! and take the union of the local results. This module simulates that
//! algorithm in memory and reports communication/load statistics and
//! per-node timings.
//!
//! Local evaluation runs either sequentially or on a **bounded worker pool**:
//! `workers` OS threads pull node chunks from a shared queue (an atomic
//! cursor over the chunk list), so a cluster of hundreds of simulated nodes
//! no longer spawns hundreds of threads, and a skewed node keeps only one
//! worker busy while the rest drain the remaining chunks.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use cq::{evaluate, ConjunctiveQuery, Instance};

use crate::distribute::DistributionStats;
use crate::network::Node;
use crate::policy::DistributionPolicy;

/// The outcome of a one-round evaluation.
#[derive(Clone, Debug)]
pub struct OneRoundOutcome {
    /// The union of the per-node results.
    pub result: Instance,
    /// Input chunk size at each node (the node's load).
    pub per_node_load: BTreeMap<Node, usize>,
    /// Output size at each node.
    pub per_node_output: BTreeMap<Node, usize>,
    /// Wall-clock time of the local evaluation at each node, so skew is
    /// observable: a straggler shows up as a per-node time far above the
    /// median even when loads look balanced.
    pub per_node_time: BTreeMap<Node, Duration>,
    /// Wall-clock time of the reshuffle (distribution) phase.
    pub distribute_time: Duration,
    /// Wall-clock time of the local-evaluation phase (all nodes).
    pub local_eval_time: Duration,
    /// Number of pool workers used for local evaluation (1 = sequential).
    pub workers: usize,
    /// Communication/load statistics of the reshuffle phase.
    pub stats: DistributionStats,
}

impl OneRoundOutcome {
    /// The largest per-node output size.
    pub fn max_node_output(&self) -> usize {
        self.per_node_output.values().copied().max().unwrap_or(0)
    }

    /// The longest per-node local evaluation time (the straggler).
    pub fn max_node_time(&self) -> Duration {
        self.per_node_time
            .values()
            .copied()
            .max()
            .unwrap_or_default()
    }

    /// Ratio of the slowest node's local evaluation time to the mean —
    /// `1.0` is perfectly balanced; large values mean one node dominates the
    /// round's makespan.
    pub fn time_skew(&self) -> f64 {
        if self.per_node_time.is_empty() {
            return 1.0;
        }
        let total: Duration = self.per_node_time.values().sum();
        let mean = total.as_secs_f64() / self.per_node_time.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.max_node_time().as_secs_f64() / mean
        }
    }
}

/// A simulated cluster executing the one-round algorithm for a policy.
pub struct OneRoundEngine<'a, P: DistributionPolicy + ?Sized> {
    policy: &'a P,
    workers: usize,
}

impl<'a, P: DistributionPolicy + ?Sized> OneRoundEngine<'a, P> {
    /// Creates an engine over the given policy (sequential local evaluation).
    pub fn new(policy: &'a P) -> OneRoundEngine<'a, P> {
        OneRoundEngine { policy, workers: 1 }
    }

    /// Sets the size of the worker pool evaluating node chunks. `1` (the
    /// default) evaluates sequentially on the calling thread; larger values
    /// spawn that many scoped OS threads which pull chunks from a shared
    /// queue. The pool is bounded by the chunk count, so asking for more
    /// workers than nodes costs nothing.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Evaluates the per-node chunks on a worker pool sized to the machine's
    /// available parallelism (`false` restores sequential evaluation).
    pub fn parallel(self, enabled: bool) -> Self {
        let workers = if enabled {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            1
        };
        self.workers(workers)
    }

    /// Runs the one-round algorithm for `query` on `instance`.
    pub fn evaluate(&self, query: &ConjunctiveQuery, instance: &Instance) -> OneRoundOutcome {
        let distribute_start = Instant::now();
        let distribution = self.policy.distribute(instance);
        let stats = distribution.stats(instance);
        let distribute_time = distribute_start.elapsed();
        let chunks: Vec<(Node, &Instance)> = distribution.chunks().collect();

        let workers = self.workers.min(chunks.len()).max(1);
        let local_start = Instant::now();
        let local_results: Vec<(Node, Instance, Duration)> = if workers > 1 {
            // Bounded pool: `workers` threads steal the next unclaimed chunk
            // index from a shared atomic cursor until the queue drains.
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut mine = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&(node, chunk)) = chunks.get(i) else {
                                    break;
                                };
                                let start = Instant::now();
                                let local = evaluate(query, chunk);
                                mine.push((node, local, start.elapsed()));
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("local evaluation panicked"))
                    .collect()
            })
        } else {
            chunks
                .iter()
                .map(|&(node, chunk)| {
                    let start = Instant::now();
                    let local = evaluate(query, chunk);
                    (node, local, start.elapsed())
                })
                .collect()
        };
        let local_eval_time = local_start.elapsed();

        let mut result = Instance::new();
        let mut per_node_output = BTreeMap::new();
        let mut per_node_time = BTreeMap::new();
        for (node, local, took) in local_results {
            per_node_output.insert(node, local.len());
            per_node_time.insert(node, took);
            result.extend(local.facts().cloned());
        }
        let per_node_load = chunks
            .iter()
            .map(|&(node, chunk)| (node, chunk.len()))
            .collect();
        OneRoundOutcome {
            result,
            per_node_load,
            per_node_output,
            per_node_time,
            distribute_time,
            local_eval_time,
            workers,
            stats,
        }
    }

    /// Whether the one-round result equals the centralized result on this
    /// instance (Definition 3.1: parallel-correctness *on* an instance).
    pub fn is_correct_on(&self, query: &ConjunctiveQuery, instance: &Instance) -> bool {
        self.evaluate(query, instance).result == evaluate(query, instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitPolicy;
    use crate::hypercube::HypercubePolicy;
    use crate::network::Network;
    use cq::{parse_instance, Fact};

    fn chain_query() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap()
    }

    #[test]
    fn broadcast_policy_is_always_correct() {
        let q = chain_query();
        let i = parse_instance("R(a, b). R(b, c). S(b, c). S(c, d).").unwrap();
        let network = Network::with_size(4);
        let p = ExplicitPolicy::broadcast(&network, &i);
        let engine = OneRoundEngine::new(&p);
        assert!(engine.is_correct_on(&q, &i));
        let outcome = engine.evaluate(&q, &i);
        assert_eq!(outcome.stats.replication_factor, 4.0);
    }

    #[test]
    fn round_robin_policy_loses_answers() {
        // Splitting joining facts over different nodes breaks the join.
        let q = chain_query();
        let i = parse_instance("R(a, b). S(b, c).").unwrap();
        let network = Network::with_size(2);
        let p = ExplicitPolicy::round_robin(&network, &i);
        let engine = OneRoundEngine::new(&p);
        let outcome = engine.evaluate(&q, &i);
        assert!(outcome.result.is_empty());
        assert!(!engine.is_correct_on(&q, &i));
    }

    #[test]
    fn hypercube_engine_matches_centralized_and_reports_stats() {
        let q = chain_query();
        let i = parse_instance(
            "R(a, b). R(b, c). R(c, d). R(d, e). S(b, x). S(c, y). S(d, z). S(e, w).",
        )
        .unwrap();
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let engine = OneRoundEngine::new(&p);
        let outcome = engine.evaluate(&q, &i);
        assert_eq!(outcome.result, cq::evaluate(&q, &i));
        assert_eq!(outcome.stats.skipped, 0);
        assert!(outcome.stats.max_load <= i.len());
        assert!(outcome.max_node_output() <= outcome.result.len());
    }

    #[test]
    fn worker_pool_and_sequential_execution_agree() {
        let q = ConjunctiveQuery::parse("T(x, y, z) :- E(x, y), E(y, z), E(z, x).").unwrap();
        let i = parse_instance(
            "E(a, b). E(b, c). E(c, a). E(b, d). E(d, b). E(d, d). E(c, d). E(d, a). E(a, c).",
        )
        .unwrap();
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let seq = OneRoundEngine::new(&p).evaluate(&q, &i);
        assert_eq!(seq.workers, 1);
        for workers in [2, 3, 16] {
            let par = OneRoundEngine::new(&p).workers(workers).evaluate(&q, &i);
            assert_eq!(seq.result, par.result);
            assert_eq!(seq.per_node_output, par.per_node_output);
            assert_eq!(seq.per_node_load, par.per_node_load);
            assert!(par.workers >= 2, "pool must actually engage");
        }
        let auto = OneRoundEngine::new(&p).parallel(true).evaluate(&q, &i);
        assert_eq!(seq.result, auto.result);
    }

    #[test]
    fn worker_pool_is_bounded_by_chunk_count() {
        let q = chain_query();
        let i = parse_instance("R(a, b). S(b, c).").unwrap();
        let network = Network::with_size(3);
        let p = ExplicitPolicy::broadcast(&network, &i);
        let outcome = OneRoundEngine::new(&p).workers(64).evaluate(&q, &i);
        assert_eq!(outcome.workers, 3, "64 requested, but only 3 chunks exist");
    }

    #[test]
    fn outcome_reports_per_node_load_and_time() {
        let q = chain_query();
        let i = parse_instance("R(a, b). S(b, c). R(c, b). S(b, a).").unwrap();
        let network = Network::with_size(3);
        let p = ExplicitPolicy::broadcast(&network, &i);
        for workers in [1, 2] {
            let outcome = OneRoundEngine::new(&p).workers(workers).evaluate(&q, &i);
            // broadcast: every node holds the full instance and full result
            assert_eq!(outcome.per_node_load.len(), 3);
            assert!(outcome.per_node_load.values().all(|&l| l == i.len()));
            let nodes: Vec<_> = outcome.per_node_output.keys().collect();
            let timed: Vec<_> = outcome.per_node_time.keys().collect();
            assert_eq!(nodes, timed, "every node must report a timing");
            assert!(outcome.local_eval_time >= outcome.max_node_time() / 2);
            assert!(outcome.time_skew() >= 1.0);
        }
    }

    #[test]
    fn per_node_outputs_sum_to_at_least_the_result() {
        let q = chain_query();
        let i = parse_instance("R(a, b). S(b, c). R(c, b). S(b, a).").unwrap();
        let network = Network::with_size(3);
        let p = ExplicitPolicy::broadcast(&network, &i);
        let outcome = OneRoundEngine::new(&p).evaluate(&q, &i);
        let total: usize = outcome.per_node_output.values().sum();
        assert!(total >= outcome.result.len());
        assert!(outcome.per_node_output.keys().all(|n| network.contains(*n)));
        // sanity: broadcast gives every node the full result
        assert!(outcome
            .per_node_output
            .values()
            .all(|&c| c == outcome.result.len()));
        let _ = Fact::from_names("T", &["a", "c"]);
    }
}
