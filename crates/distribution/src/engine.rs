//! The simulated one-round evaluation algorithm.
//!
//! Given a parallel-correct query/policy pair, the one-round algorithm of the
//! paper (Section 3) proceeds as: reshuffle the input according to the
//! policy, evaluate the query locally at every node without communication,
//! and take the union of the local results. This module simulates that
//! algorithm in memory and reports communication/load statistics and
//! per-node timings.
//!
//! Local evaluation runs either sequentially or on a **bounded worker pool**:
//! `workers` OS threads pull node chunks from a shared queue (an atomic
//! cursor over the chunk list), so a cluster of hundreds of simulated nodes
//! no longer spawns hundreds of threads, and a skewed node keeps only one
//! worker busy while the rest drain the remaining chunks.
//!
//! The reshuffle phase itself has two axes of configuration:
//! [`OneRoundEngine::distribute_workers`] shards the policy's `nodes_for`
//! calls over threads, and [`OneRoundEngine::streaming`] switches from the
//! fully materialized [`Distribution`](crate::Distribution) to a
//! [`ChunkStream`](crate::ChunkStream) of borrowed fact slices: each worker
//! materializes one node's chunk at a time and drops it after evaluating,
//! so the peak number of owned chunks is the pool size, not the network
//! size ([`OneRoundOutcome::peak_chunks`] reports the difference).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use cq::{evaluate, evaluate_with, ConjunctiveQuery, EvalOptions, Instance};

use crate::distribute::DistributionStats;
use crate::network::Node;
use crate::policy::DistributionPolicy;
use crate::transport::{drain_pool, InMemoryTransport, Transport, TransportError};

/// The outcome of a one-round evaluation.
#[derive(Clone, Debug)]
pub struct OneRoundOutcome {
    /// The union of the per-node results.
    pub result: Instance,
    /// Input chunk size at each node (the node's load).
    pub per_node_load: BTreeMap<Node, usize>,
    /// Output size at each node.
    pub per_node_output: BTreeMap<Node, usize>,
    /// Wall-clock time of the local evaluation at each node, so skew is
    /// observable: a straggler shows up as a per-node time far above the
    /// median even when loads look balanced.
    pub per_node_time: BTreeMap<Node, Duration>,
    /// Wall-clock time of the reshuffle (distribution) phase.
    pub distribute_time: Duration,
    /// Wall-clock time of the local-evaluation phase (all nodes).
    pub local_eval_time: Duration,
    /// Number of pool workers used for local evaluation (1 = sequential).
    pub workers: usize,
    /// Peak number of **owned** chunk instances alive at once during the
    /// round — the allocation proxy of the reshuffle path. Materialized
    /// distribution holds every chunk simultaneously (`= nodes`); in
    /// streaming mode this is the *observed* high-water mark of live
    /// chunks, at most one per pool worker.
    pub peak_chunks: usize,
    /// Whether the reshuffle streamed borrowed chunks instead of
    /// materializing a full [`Distribution`](crate::Distribution).
    pub streamed: bool,
    /// Bytes actually serialized onto a process boundary this round, in
    /// both directions (request frames plus the result frames they
    /// provoke), as counted by the transport
    /// ([`Transport::take_bytes_shipped`]) — `0` for in-process rounds,
    /// where nothing is serialized. This is the honest byte-level
    /// counterpart of `stats.total_assigned`, which counts `(fact, node)`
    /// assignments.
    pub comm_bytes: u64,
    /// Hits of the transport's shared index cache this round: how many node
    /// chunks reused another node's indexed instance instead of rebuilding
    /// hash indexes (nonzero only for replicating policies on transports
    /// that keep a cache; see [`Transport::index_cache_stats`]).
    pub index_cache_hits: u64,
    /// Misses of the transport's shared index cache this round (chunks that
    /// entered the cache without finding an equal resident).
    pub index_cache_misses: u64,
    /// Communication/load statistics of the reshuffle phase.
    pub stats: DistributionStats,
}

impl OneRoundOutcome {
    /// The largest per-node output size.
    pub fn max_node_output(&self) -> usize {
        self.per_node_output.values().copied().max().unwrap_or(0)
    }

    /// The longest per-node local evaluation time (the straggler).
    pub fn max_node_time(&self) -> Duration {
        self.per_node_time
            .values()
            .copied()
            .max()
            .unwrap_or_default()
    }

    /// Ratio of the slowest node's local evaluation time to the mean —
    /// `1.0` is perfectly balanced; large values mean one node dominates the
    /// round's makespan.
    pub fn time_skew(&self) -> f64 {
        if self.per_node_time.is_empty() {
            return 1.0;
        }
        let total: Duration = self.per_node_time.values().sum();
        let mean = total.as_secs_f64() / self.per_node_time.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.max_node_time().as_secs_f64() / mean
        }
    }
}

/// A simulated cluster executing the one-round algorithm for a policy.
pub struct OneRoundEngine<'a, P: DistributionPolicy + ?Sized> {
    policy: &'a P,
    workers: usize,
    distribute_workers: usize,
    streaming: bool,
    eval_options: EvalOptions,
}

impl<'a, P: DistributionPolicy + ?Sized> OneRoundEngine<'a, P> {
    /// Creates an engine over the given policy (sequential local evaluation,
    /// sequential materialized reshuffle).
    pub fn new(policy: &'a P) -> OneRoundEngine<'a, P> {
        OneRoundEngine {
            policy,
            workers: 1,
            distribute_workers: 1,
            streaming: false,
            eval_options: EvalOptions::default(),
        }
    }

    /// Sets the size of the worker pool evaluating node chunks. `1` (the
    /// default) evaluates sequentially on the calling thread; larger values
    /// spawn that many scoped OS threads which pull chunks from a shared
    /// queue. The pool is bounded by the chunk count, so asking for more
    /// workers than nodes costs nothing.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Evaluates the per-node chunks on a worker pool sized to the machine's
    /// available parallelism (`false` restores sequential evaluation).
    pub fn parallel(self, enabled: bool) -> Self {
        let workers = if enabled {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            1
        };
        self.workers(workers)
    }

    /// Sets the number of threads sharding the reshuffle phase itself
    /// (`nodes_for` calls). `1` (the default) keeps the reshuffle on the
    /// calling thread; the result is identical either way.
    pub fn distribute_workers(mut self, workers: usize) -> Self {
        self.distribute_workers = workers.max(1);
        self
    }

    /// Switches the reshuffle to streaming mode: chunks are handed to the
    /// evaluation workers as borrowed fact slices and materialized one at a
    /// time per worker, so peak memory stops scaling with `nodes × facts`.
    /// The outcome is identical to materialized mode except for
    /// [`OneRoundOutcome::peak_chunks`] and timings.
    pub fn streaming(mut self, enabled: bool) -> Self {
        self.streaming = enabled;
        self
    }

    /// Sets the [`EvalOptions`] every node's local evaluation runs with —
    /// notably the join strategy (`Binary`, `Multiway` or `Auto`). The
    /// options travel with [`Transport::begin_round`], so they apply on
    /// every path: in-process pools, streaming, and wire transports whose
    /// workers live in other processes.
    pub fn eval_options(mut self, options: EvalOptions) -> Self {
        self.eval_options = options;
        self
    }

    /// Runs the one-round algorithm for `query` on `instance`.
    pub fn evaluate(&self, query: &ConjunctiveQuery, instance: &Instance) -> OneRoundOutcome {
        if self.streaming {
            self.evaluate_streaming(query, instance)
        } else {
            self.evaluate_materialized(query, instance)
        }
    }

    /// The materialized path: reshuffle into owned chunks, then ship them
    /// through an [`InMemoryTransport`] whose barrier drains the same
    /// bounded worker pool this engine always used.
    fn evaluate_materialized(
        &self,
        query: &ConjunctiveQuery,
        instance: &Instance,
    ) -> OneRoundOutcome {
        let mut transport = InMemoryTransport::new(self.workers);
        self.evaluate_via(&mut transport, 0, query, instance)
            .expect("the in-memory transport is infallible")
    }

    /// Runs one round of the algorithm through an explicit [`Transport`]:
    /// reshuffle locally, ship every node's chunk, wait at the barrier,
    /// collect the per-node outputs. `round` tags the transport messages
    /// (multi-round runs number their rounds; standalone calls pass 0).
    ///
    /// This is the same algorithm as [`OneRoundEngine::evaluate`] — the
    /// default path is exactly `evaluate_via` over an [`InMemoryTransport`]
    /// — but the chunks may now cross a process boundary, so the call can
    /// fail with a [`TransportError`].
    pub fn evaluate_via(
        &self,
        transport: &mut dyn Transport,
        round: usize,
        query: &ConjunctiveQuery,
        instance: &Instance,
    ) -> Result<OneRoundOutcome, TransportError> {
        let _round_span = obs::span!("one_round", round = round, facts = instance.len());
        let distribute_start = Instant::now();
        let distribution = {
            let _span = obs::span!("distribute", facts = instance.len());
            self.policy
                .distribute_parallel(instance, self.distribute_workers)
        };
        let stats = distribution.stats(instance);
        let distribute_time = distribute_start.elapsed();

        let local_start = Instant::now();
        transport.begin_round(round, query, self.eval_options)?;
        let mut per_node_load = BTreeMap::new();
        let mut nodes = Vec::new();
        for (node, chunk) in distribution.into_chunks() {
            per_node_load.insert(node, chunk.len());
            nodes.push(node);
            transport.send_chunk(node, chunk)?;
        }
        transport.barrier()?;
        let mut local_results = Vec::with_capacity(nodes.len());
        for &node in &nodes {
            let result = transport.recv_chunk(node)?;
            local_results.push((node, result.output, result.eval_time));
        }
        let local_eval_time = local_start.elapsed();
        let comm_bytes = transport.take_bytes_shipped();
        let cache = transport.index_cache_stats();

        let workers = transport.parallelism().min(nodes.len()).max(1);
        Ok(self.assemble(
            local_results,
            per_node_load,
            distribute_time,
            local_eval_time,
            workers,
            nodes.len(),
            false,
            comm_bytes,
            cache,
            stats,
        ))
    }

    /// One **incremental** round through a transport: `delta` holds only
    /// the facts that are new since the previous round, the reshuffle
    /// distributes just those, and the nodes — which keep their accumulated
    /// state inside the transport — answer with only their new derivations
    /// ([`Transport::send_delta`]/[`Transport::recv_delta`]).
    ///
    /// Round 0 must ship a (possibly empty) delta chunk to **every** node
    /// so the transport can reset per-node state; later rounds skip nodes
    /// whose delta chunk is empty — they could neither learn nor derive
    /// anything, which is exactly the late-round saving of semi-naive
    /// evaluation. The outcome's `result` is the union of the per-node
    /// *output deltas*, and `per_node_load`/`stats` describe the delta
    /// reshuffle (what was actually shipped), not the accumulated state.
    pub fn evaluate_delta_via(
        &self,
        transport: &mut dyn Transport,
        round: usize,
        query: &ConjunctiveQuery,
        delta: &Instance,
    ) -> Result<OneRoundOutcome, TransportError> {
        let _round_span = obs::span!("delta_round", round = round, delta_facts = delta.len());
        let distribute_start = Instant::now();
        let distribution = {
            let _span = obs::span!("distribute", facts = delta.len());
            self.policy
                .distribute_parallel(delta, self.distribute_workers)
        };
        let stats = distribution.stats(delta);
        let distribute_time = distribute_start.elapsed();

        let local_start = Instant::now();
        transport.begin_round(round, query, self.eval_options)?;
        let mut per_node_load = BTreeMap::new();
        let mut sent = Vec::new();
        let mut skipped = Vec::new();
        for (node, chunk) in distribution.into_chunks() {
            per_node_load.insert(node, chunk.len());
            if round > 0 && chunk.is_empty() {
                skipped.push(node);
                continue;
            }
            sent.push(node);
            transport.send_delta(node, chunk)?;
        }
        transport.barrier()?;
        let mut local_results = Vec::with_capacity(sent.len() + skipped.len());
        for &node in &sent {
            let result = transport.recv_delta(node)?;
            local_results.push((node, result.output, result.eval_time));
        }
        for node in skipped {
            local_results.push((node, Instance::new(), Duration::ZERO));
        }
        let local_eval_time = local_start.elapsed();
        let comm_bytes = transport.take_bytes_shipped();
        let cache = transport.index_cache_stats();

        let workers = transport.parallelism().min(sent.len()).max(1);
        let peak_chunks = sent.len();
        Ok(self.assemble(
            local_results,
            per_node_load,
            distribute_time,
            local_eval_time,
            workers,
            peak_chunks,
            false,
            comm_bytes,
            cache,
            stats,
        ))
    }

    /// The streaming path: reshuffle into borrowed fact slices, then have
    /// each worker materialize, evaluate and drop one chunk at a time. At
    /// most `workers` owned chunks are alive at any moment.
    fn evaluate_streaming(&self, query: &ConjunctiveQuery, instance: &Instance) -> OneRoundOutcome {
        let _round_span = obs::span!("one_round_streaming", facts = instance.len());
        let distribute_start = Instant::now();
        let stream = self
            .policy
            .distribute_stream(instance, self.distribute_workers);
        let stats = stream.stats(instance);
        let distribute_time = distribute_start.elapsed();
        let nodes: Vec<Node> = stream.nodes().collect();

        let workers = self.workers.min(nodes.len()).max(1);
        // Observed high-water mark of simultaneously-alive owned chunks —
        // measured, not derived from the pool size, so a future change that
        // accidentally keeps chunks alive longer shows up in `peak_chunks`.
        let live_chunks = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let local_start = Instant::now();
        let local_results = drain_pool(&nodes, workers, |&node| {
            let start = Instant::now();
            // Count the chunk as live before building it, so a chunk mid-
            // materialization on another worker is never missed by the peak.
            let alive = live_chunks.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(alive, Ordering::SeqCst);
            // The owned chunk lives only for this evaluation.
            let chunk = stream.for_node_lazy(node);
            let local = evaluate_with(query, &chunk, self.eval_options);
            drop(chunk);
            live_chunks.fetch_sub(1, Ordering::SeqCst);
            (node, local, start.elapsed())
        });
        let local_eval_time = local_start.elapsed();

        let per_node_load = nodes.iter().map(|&n| (n, stream.len_of(n))).collect();
        self.assemble(
            local_results,
            per_node_load,
            distribute_time,
            local_eval_time,
            workers,
            peak.load(Ordering::SeqCst),
            true,
            0,
            (0, 0),
            stats,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        local_results: Vec<(Node, Instance, Duration)>,
        per_node_load: BTreeMap<Node, usize>,
        distribute_time: Duration,
        local_eval_time: Duration,
        workers: usize,
        peak_chunks: usize,
        streamed: bool,
        comm_bytes: u64,
        index_cache: (u64, u64),
        stats: DistributionStats,
    ) -> OneRoundOutcome {
        let mut result = Instance::new();
        let mut per_node_output = BTreeMap::new();
        let mut per_node_time = BTreeMap::new();
        for (node, local, took) in local_results {
            per_node_output.insert(node, local.len());
            per_node_time.insert(node, took);
            result.extend(local.facts().cloned());
        }
        OneRoundOutcome {
            result,
            per_node_load,
            per_node_output,
            per_node_time,
            distribute_time,
            local_eval_time,
            workers,
            peak_chunks,
            streamed,
            comm_bytes,
            index_cache_hits: index_cache.0,
            index_cache_misses: index_cache.1,
            stats,
        }
    }

    /// Whether the one-round result equals the centralized result on this
    /// instance (Definition 3.1: parallel-correctness *on* an instance).
    pub fn is_correct_on(&self, query: &ConjunctiveQuery, instance: &Instance) -> bool {
        self.evaluate(query, instance).result == evaluate(query, instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitPolicy;
    use crate::hypercube::HypercubePolicy;
    use crate::network::Network;
    use cq::{parse_instance, Fact};

    fn chain_query() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap()
    }

    #[test]
    fn broadcast_policy_is_always_correct() {
        let q = chain_query();
        let i = parse_instance("R(a, b). R(b, c). S(b, c). S(c, d).").unwrap();
        let network = Network::with_size(4);
        let p = ExplicitPolicy::broadcast(&network, &i);
        let engine = OneRoundEngine::new(&p);
        assert!(engine.is_correct_on(&q, &i));
        let outcome = engine.evaluate(&q, &i);
        assert_eq!(outcome.stats.replication_factor, 4.0);
    }

    #[test]
    fn round_robin_policy_loses_answers() {
        // Splitting joining facts over different nodes breaks the join.
        let q = chain_query();
        let i = parse_instance("R(a, b). S(b, c).").unwrap();
        let network = Network::with_size(2);
        let p = ExplicitPolicy::round_robin(&network, &i);
        let engine = OneRoundEngine::new(&p);
        let outcome = engine.evaluate(&q, &i);
        assert!(outcome.result.is_empty());
        assert!(!engine.is_correct_on(&q, &i));
    }

    #[test]
    fn hypercube_engine_matches_centralized_and_reports_stats() {
        let q = chain_query();
        let i = parse_instance(
            "R(a, b). R(b, c). R(c, d). R(d, e). S(b, x). S(c, y). S(d, z). S(e, w).",
        )
        .unwrap();
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let engine = OneRoundEngine::new(&p);
        let outcome = engine.evaluate(&q, &i);
        assert_eq!(outcome.result, cq::evaluate(&q, &i));
        assert_eq!(outcome.stats.skipped, 0);
        assert!(outcome.stats.max_load <= i.len());
        assert!(outcome.max_node_output() <= outcome.result.len());
    }

    #[test]
    fn worker_pool_and_sequential_execution_agree() {
        let q = ConjunctiveQuery::parse("T(x, y, z) :- E(x, y), E(y, z), E(z, x).").unwrap();
        let i = parse_instance(
            "E(a, b). E(b, c). E(c, a). E(b, d). E(d, b). E(d, d). E(c, d). E(d, a). E(a, c).",
        )
        .unwrap();
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let seq = OneRoundEngine::new(&p).evaluate(&q, &i);
        assert_eq!(seq.workers, 1);
        for workers in [2, 3, 16] {
            let par = OneRoundEngine::new(&p).workers(workers).evaluate(&q, &i);
            assert_eq!(seq.result, par.result);
            assert_eq!(seq.per_node_output, par.per_node_output);
            assert_eq!(seq.per_node_load, par.per_node_load);
            assert!(par.workers >= 2, "pool must actually engage");
        }
        let auto = OneRoundEngine::new(&p).parallel(true).evaluate(&q, &i);
        assert_eq!(seq.result, auto.result);
    }

    #[test]
    fn worker_pool_is_bounded_by_chunk_count() {
        let q = chain_query();
        let i = parse_instance("R(a, b). S(b, c).").unwrap();
        let network = Network::with_size(3);
        let p = ExplicitPolicy::broadcast(&network, &i);
        let outcome = OneRoundEngine::new(&p).workers(64).evaluate(&q, &i);
        assert_eq!(outcome.workers, 3, "64 requested, but only 3 chunks exist");
    }

    #[test]
    fn outcome_reports_per_node_load_and_time() {
        let q = chain_query();
        let i = parse_instance("R(a, b). S(b, c). R(c, b). S(b, a).").unwrap();
        let network = Network::with_size(3);
        let p = ExplicitPolicy::broadcast(&network, &i);
        for workers in [1, 2] {
            let outcome = OneRoundEngine::new(&p).workers(workers).evaluate(&q, &i);
            // broadcast: every node holds the full instance and full result
            assert_eq!(outcome.per_node_load.len(), 3);
            assert!(outcome.per_node_load.values().all(|&l| l == i.len()));
            let nodes: Vec<_> = outcome.per_node_output.keys().collect();
            let timed: Vec<_> = outcome.per_node_time.keys().collect();
            assert_eq!(nodes, timed, "every node must report a timing");
            assert!(outcome.local_eval_time >= outcome.max_node_time() / 2);
            assert!(outcome.time_skew() >= 1.0);
        }
    }

    #[test]
    fn streaming_engine_agrees_with_materialized_engine() {
        let q = ConjunctiveQuery::parse("T(x, y, z) :- E(x, y), E(y, z), E(z, x).").unwrap();
        let i = parse_instance(
            "E(a, b). E(b, c). E(c, a). E(b, d). E(d, b). E(d, d). E(c, d). E(d, a). E(a, c).",
        )
        .unwrap();
        let p = HypercubePolicy::uniform(&q, 2).unwrap();
        let materialized = OneRoundEngine::new(&p).evaluate(&q, &i);
        for workers in [1, 2, 4] {
            let streamed = OneRoundEngine::new(&p)
                .workers(workers)
                .streaming(true)
                .evaluate(&q, &i);
            assert!(streamed.streamed);
            assert_eq!(streamed.result, materialized.result);
            assert_eq!(streamed.per_node_load, materialized.per_node_load);
            assert_eq!(streamed.per_node_output, materialized.per_node_output);
            assert_eq!(streamed.stats, materialized.stats);
            // the allocation proxy: at most one owned chunk per worker,
            // versus one per node for the materialized path
            assert!(streamed.peak_chunks <= workers);
            assert_eq!(materialized.peak_chunks, materialized.stats.nodes);
        }
    }

    #[test]
    fn parallel_reshuffle_agrees_with_sequential_reshuffle() {
        let q = chain_query();
        let i = parse_instance(
            "R(a, b). R(b, c). R(c, d). R(d, e). S(b, x). S(c, y). S(d, z). S(e, w).",
        )
        .unwrap();
        let p = HypercubePolicy::uniform(&q, 3).unwrap();
        let seq = OneRoundEngine::new(&p).evaluate(&q, &i);
        for dw in [2, 3, 8] {
            let par = OneRoundEngine::new(&p)
                .distribute_workers(dw)
                .evaluate(&q, &i);
            assert_eq!(seq.result, par.result);
            assert_eq!(seq.per_node_load, par.per_node_load);
            assert_eq!(seq.stats, par.stats);
        }
    }

    #[test]
    fn empty_network_run_is_safe_and_reports_neutral_skew() {
        // A policy over an empty network produces no chunks at all: the
        // outcome must be empty without panicking, and the derived metrics
        // must stay well-defined (no divide-by-zero).
        let q = chain_query();
        let i = parse_instance("R(a, b). S(b, c).").unwrap();
        let p = ExplicitPolicy::new(Network::default());
        for streaming in [false, true] {
            let outcome = OneRoundEngine::new(&p)
                .workers(4)
                .streaming(streaming)
                .evaluate(&q, &i);
            assert!(outcome.result.is_empty());
            assert!(outcome.per_node_time.is_empty());
            assert_eq!(outcome.max_node_output(), 0);
            assert_eq!(outcome.max_node_time(), Duration::ZERO);
            assert_eq!(outcome.time_skew(), 1.0, "empty network must report 1.0");
            assert_eq!(outcome.stats.nodes, 0);
            assert_eq!(outcome.stats.replication_factor, 0.0);
            assert_eq!(outcome.stats.skipped, i.len());
        }
    }

    #[test]
    fn zero_output_run_reports_zero_maxima_and_finite_skew() {
        // Round-robin on a 2-fact join loses every answer: outputs are all
        // zero, and per-node times may all be sub-resolution zeros — the
        // maxima and the skew ratio must still be well-defined.
        let q = chain_query();
        let i = parse_instance("R(a, b). S(b, c).").unwrap();
        let network = Network::with_size(2);
        let p = ExplicitPolicy::round_robin(&network, &i);
        let outcome = OneRoundEngine::new(&p).evaluate(&q, &i);
        assert!(outcome.result.is_empty());
        assert_eq!(outcome.max_node_output(), 0);
        assert!(outcome.per_node_output.values().all(|&o| o == 0));
        let skew = outcome.time_skew();
        assert!(skew.is_finite() && skew >= 1.0, "skew {skew} must be sane");
    }

    #[test]
    fn eval_options_strategies_agree_and_broadcast_reports_cache_hits() {
        use cq::JoinStrategy;
        let q = ConjunctiveQuery::parse("T(x, y, z) :- E(x, y), E(y, z), E(z, x).").unwrap();
        let i = parse_instance(
            "E(a, b). E(b, c). E(c, a). E(b, d). E(d, b). E(c, d). E(d, a). E(a, c).",
        )
        .unwrap();
        let network = Network::with_size(3);
        let p = ExplicitPolicy::broadcast(&network, &i);
        let baseline = OneRoundEngine::new(&p).evaluate(&q, &i);
        for strategy in [
            JoinStrategy::Binary,
            JoinStrategy::Multiway,
            JoinStrategy::Auto,
        ] {
            let outcome = OneRoundEngine::new(&p)
                .eval_options(EvalOptions {
                    join_strategy: strategy,
                    ..EvalOptions::default()
                })
                .evaluate(&q, &i);
            assert_eq!(outcome.result, baseline.result, "{strategy:?}");
        }
        // Broadcast ships three equal chunks: the transport's shared index
        // cache admits one and reuses it twice, and the outcome surfaces it.
        assert_eq!(baseline.index_cache_misses, 1);
        assert_eq!(baseline.index_cache_hits, 2);
        // The streaming path keeps no shared cache and reports zeros.
        let streamed = OneRoundEngine::new(&p).streaming(true).evaluate(&q, &i);
        assert_eq!(streamed.result, baseline.result);
        assert_eq!(streamed.index_cache_hits, 0);
        assert_eq!(streamed.index_cache_misses, 0);
    }

    #[test]
    fn per_node_outputs_sum_to_at_least_the_result() {
        let q = chain_query();
        let i = parse_instance("R(a, b). S(b, c). R(c, b). S(b, a).").unwrap();
        let network = Network::with_size(3);
        let p = ExplicitPolicy::broadcast(&network, &i);
        let outcome = OneRoundEngine::new(&p).evaluate(&q, &i);
        let total: usize = outcome.per_node_output.values().sum();
        assert!(total >= outcome.result.len());
        assert!(outcome.per_node_output.keys().all(|n| network.contains(*n)));
        // sanity: broadcast gives every node the full result
        assert!(outcome
            .per_node_output
            .values()
            .all(|&c| c == outcome.result.len()));
        let _ = Fact::from_names("T", &["a", "c"]);
    }
}
