//! Property-based tests for distribution policies and the one-round and
//! multi-round engines, including the differential suites: parallel and
//! streaming reshuffle must agree exactly with the materialized
//! single-threaded `distribute`, and a one-round-capped `MultiRoundEngine`
//! must agree exactly with `OneRoundEngine`.

use cq::{ConjunctiveQuery, Fact, Instance, Value};
use distribution::{
    DistributionPolicy, ExplicitPolicy, HypercubePolicy, MultiRoundEngine, Network, Node,
    OneRoundEngine, RoundSchedule,
};
use proptest::prelude::*;

/// The four policy shapes of the differential suites over a binary `R`
/// (broadcast, round-robin, single-key hash, hypercube), built for the
/// given instance and query.
fn policy_zoo(
    i: &Instance,
    q: &ConjunctiveQuery,
    nodes: usize,
    buckets: usize,
) -> Vec<(&'static str, Box<dyn DistributionPolicy>)> {
    let network = Network::with_size(nodes);
    // single-key hash: buckets on the first variable only, 1 elsewhere
    let dims = q.variables().len();
    let mut hash_buckets = vec![1usize; dims];
    hash_buckets[0] = buckets.max(1);
    vec![
        (
            "broadcast",
            Box::new(ExplicitPolicy::broadcast(&network, i)) as Box<dyn DistributionPolicy>,
        ),
        (
            "round_robin",
            Box::new(ExplicitPolicy::round_robin(&network, i)),
        ),
        (
            "hash",
            Box::new(HypercubePolicy::with_buckets(q, &hash_buckets).unwrap()),
        ),
        (
            "hypercube",
            Box::new(HypercubePolicy::uniform(q, buckets.max(1)).unwrap()),
        ),
    ]
}

/// A strategy for small instances over one binary relation `R`.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    let fact = (0..6usize, 0..6usize);
    proptest::collection::vec(fact, 0..30).prop_map(|facts| {
        Instance::from_facts(
            facts
                .into_iter()
                .map(|(a, b)| Fact::new("R", vec![Value::indexed("d", a), Value::indexed("d", b)])),
        )
    })
}

/// A strategy for a small query over `R` (chain of length 1..4 with a random
/// number of head variables).
fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    (1usize..4, 0usize..3).prop_map(|(len, head)| {
        let var = |i: usize| cq::Variable::indexed("x", i);
        let body: Vec<cq::Atom> = (0..len)
            .map(|i| cq::Atom::new("R", vec![var(i), var(i + 1)]))
            .collect();
        let head_vars: Vec<cq::Variable> = (0..=len).take(head + 1).map(var).collect();
        ConjunctiveQuery::new(cq::Atom::new("T", head_vars), body).unwrap()
    })
}

proptest! {
    // Bounded and explicitly seeded: 48 deterministic cases per property so
    // `cargo test -q` is reproducible and fast.
    #![proptest_config(ProptestConfig::with_cases(48).with_rng_seed(0xD157_5EED))]

    /// A policy only ever assigns facts to nodes of its own network, and the
    /// distributed chunks partition-with-replication the non-skipped facts.
    #[test]
    fn distribution_respects_the_network(i in instance_strategy(), buckets in 1usize..4, q in query_strategy()) {
        let policy = HypercubePolicy::uniform(&q, buckets).unwrap();
        for fact in i.facts() {
            for node in policy.nodes_for(fact) {
                prop_assert!(policy.network().contains(node));
            }
        }
        let dist = policy.distribute(&i);
        let stats = dist.stats(&i);
        prop_assert_eq!(stats.distinct_assigned + stats.skipped, i.len());
        prop_assert!(stats.max_load <= stats.total_assigned);
        prop_assert!(dist.union_of_chunks().len() <= i.len());
    }

    /// Hypercube generosity (Lemma 5.7): the required facts of every
    /// satisfying valuation meet at the node addressed by the valuation.
    #[test]
    fn hypercube_generosity(i in instance_strategy(), buckets in 1usize..4, q in query_strategy()) {
        let policy = HypercubePolicy::uniform(&q, buckets).unwrap();
        for v in cq::satisfying_valuations(&q, &i).into_iter().take(25) {
            let node = policy.node_for_valuation(&v).unwrap();
            let meeting = policy.meeting_nodes(&v.required_facts(&q)).unwrap();
            prop_assert!(meeting.contains(&node));
        }
    }

    /// One-round evaluation is monotone in the policy: broadcasting gives the
    /// exact answer, any explicit sub-policy gives a subset of it.
    #[test]
    fn one_round_results_are_bounded_by_the_centralized_answer(
        i in instance_strategy(),
        q in query_strategy(),
        nodes in 1usize..5,
        seedmask in 0u64..u64::MAX,
    ) {
        let expected = cq::evaluate(&q, &i);
        let network = Network::with_size(nodes);

        let broadcast = ExplicitPolicy::broadcast(&network, &i);
        let b = OneRoundEngine::new(&broadcast).evaluate(&q, &i);
        prop_assert_eq!(&b.result, &expected);

        // A deterministic "random" single-assignment policy from the seed mask.
        let mut single = ExplicitPolicy::new(network.clone());
        for (k, fact) in i.facts().enumerate() {
            let node = Node::numbered(((seedmask >> (k % 32)) as usize ^ k) % nodes);
            single.assign(fact.clone(), [node]);
        }
        let s = OneRoundEngine::new(&single).evaluate(&q, &i);
        prop_assert!(expected.contains_all(&s.result));
    }

    /// The engine's per-node outputs are consistent with the union result.
    #[test]
    fn per_node_outputs_are_consistent(i in instance_strategy(), q in query_strategy(), buckets in 1usize..3) {
        let policy = HypercubePolicy::uniform(&q, buckets).unwrap();
        let outcome = OneRoundEngine::new(&policy).evaluate(&q, &i);
        let total: usize = outcome.per_node_output.values().sum();
        prop_assert!(outcome.result.len() <= total || outcome.result.is_empty());
        prop_assert!(outcome.max_node_output() <= outcome.result.len() || outcome.result.is_empty());
    }

    /// Differential: parallel and streaming reshuffle agree chunk-for-chunk
    /// with the materialized single-threaded `distribute`, across all four
    /// policy shapes.
    #[test]
    fn reshuffle_modes_agree_with_materialized_distribute(
        i in instance_strategy(),
        q in query_strategy(),
        nodes in 1usize..4,
        buckets in 1usize..4,
        workers in 2usize..5,
    ) {
        for (name, policy) in policy_zoo(&i, &q, nodes, buckets) {
            let reference = policy.distribute(&i);
            let parallel = policy.distribute_parallel(&i, workers);
            prop_assert_eq!(&reference, &parallel, "parallel distribute diverged for {}", name);

            let stream = policy.distribute_stream(&i, workers);
            prop_assert_eq!(
                &reference, &stream.materialize(),
                "streamed chunks diverged for {}", name
            );
            prop_assert_eq!(
                reference.stats(&i), stream.stats(&i),
                "stream stats diverged for {}", name
            );
            for (node, chunk) in reference.chunks() {
                prop_assert_eq!(
                    chunk, &stream.for_node_lazy(node),
                    "lazy chunk of {} diverged for {}", node, name
                );
                prop_assert_eq!(chunk, &policy.for_node_lazy(&i, node));
            }
        }
    }

    /// Differential: the streaming engine path produces the same outcome as
    /// the materialized path (modulo timings and the allocation proxy).
    #[test]
    fn streaming_engine_agrees_with_materialized_engine(
        i in instance_strategy(),
        q in query_strategy(),
        nodes in 1usize..4,
        buckets in 1usize..4,
        workers in 1usize..4,
    ) {
        for (name, policy) in policy_zoo(&i, &q, nodes, buckets) {
            let materialized = OneRoundEngine::new(policy.as_ref()).evaluate(&q, &i);
            let streamed = OneRoundEngine::new(policy.as_ref())
                .workers(workers)
                .distribute_workers(workers)
                .streaming(true)
                .evaluate(&q, &i);
            prop_assert_eq!(&materialized.result, &streamed.result, "result diverged for {}", name);
            prop_assert_eq!(&materialized.per_node_load, &streamed.per_node_load);
            prop_assert_eq!(&materialized.per_node_output, &streamed.per_node_output);
            prop_assert_eq!(materialized.stats, streamed.stats);
            prop_assert!(streamed.peak_chunks <= workers.max(1));
        }
    }

    /// Differential: a `MultiRoundEngine` capped at one round is exactly a
    /// `OneRoundEngine`, across all four policy shapes.
    #[test]
    fn single_round_multi_round_is_one_round(
        i in instance_strategy(),
        q in query_strategy(),
        nodes in 1usize..4,
        buckets in 1usize..4,
    ) {
        for (name, policy) in policy_zoo(&i, &q, nodes, buckets) {
            let one = OneRoundEngine::new(policy.as_ref()).evaluate(&q, &i);
            let multi = MultiRoundEngine::new(RoundSchedule::repeat(policy.as_ref()))
                .rounds(1)
                .evaluate(&q, &i);
            prop_assert_eq!(multi.rounds_run(), 1);
            prop_assert_eq!(&multi.result, &one.result, "result diverged for {}", name);
            let round = &multi.rounds[0];
            prop_assert_eq!(&round.per_node_load, &one.per_node_load);
            prop_assert_eq!(&round.per_node_output, &one.per_node_output);
            prop_assert_eq!(round.stats, one.stats);
            prop_assert_eq!(round.workers, one.workers);
            prop_assert_eq!(multi.total_comm_volume(), one.stats.total_assigned);
        }
    }
}
