//! The textual scenario format: one file describing a complete distributed
//! evaluation — query, data, per-round policies, round cap and feedback
//! relation.
//!
//! The grammar extends the `cq::parser` grammar (same identifiers, same
//! query and fact syntax, same `%`/`#` line comments) with the stanzas the
//! query language cannot express — networks, distribution policies and
//! round schedules:
//!
//! ```text
//! scenario := stanza*
//! stanza   := "query" QUERY                       # cq query, ends at '.'
//!           | "queries" "{" QUERY+ "}"            # a query sequence
//!           | "instance" "{" FACT* "}"            # cq instance syntax
//!           | "policy" "{" entry* "}"             # explicit per-fact policy
//!           | "schedule" policy ("," policy)*     # one entry per round
//!           | "rounds" NUMBER
//!           | "feedback" IDENT
//! entry    := IDENT ":" FACT*                     # node: its facts (one line,
//!           | "default" ":" IDENT*                #   or terminated by ';')
//! policy   := "broadcast"   network
//!           | "round-robin" network
//!           | "hash"        "(" NUMBER ")"        # buckets on the join var
//!           | "hypercube"   "(" NUMBER ("," NUMBER)* ")"
//!                                                 # one uniform budget, or
//!                                                 # per-dimension buckets
//!           | "explicit"                          # the policy stanza
//! network  := "(" NUMBER ")"                      # n0 … n{N-1}
//!           | "{" IDENT+ "}"                      # explicitly named nodes
//! ```
//!
//! Exactly one of `query` / `queries` is required (the former is sugar for
//! a one-element sequence; a multi-query scenario runs its queries in
//! order, eliding reshuffles at transferable boundaries — see
//! `MultiRoundEngine::evaluate_queries`), along with `instance` and
//! `schedule`; each stanza appears at most once, `rounds` defaults to 1
//! and `feedback` to none. The schedule's last policy repeats past the
//! end, exactly like [`distribution::RoundSchedule`].
//!
//! The `policy` stanza is the scenario form of the `pc` policy-file format
//! ("one line per node, an optional `default:` line assigns unlisted
//! facts"): it defines one explicit fact→nodes policy, and a schedule
//! entry `explicit` runs a round under it. Entries end at a newline, a
//! `;`, or the closing `}`; facts on an entry line use the cq fact syntax
//! with flexible separators.
//!
//! [`Scenario`]'s `Display` impl is the pretty-printer; parsing is its
//! exact inverse (`Scenario::parse(s.to_string()) == s` for every value),
//! which the property suite pins.

use std::collections::BTreeMap;
use std::fmt;

use cq::{ConjunctiveQuery, Fact, Instance, Symbol};
use distribution::{DistributionPolicy, ExplicitPolicy, HypercubePolicy, Network, Node};
use workloads::hash_join_policy;

use crate::codec::{Decode, DecodeError, Decoder, Encode, Encoder};

/// A parse error in a scenario file, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError {
    /// Byte offset at which the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ScenarioError {}

/// The network a broadcast / round-robin policy runs over.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkSpec {
    /// `N` standard-named nodes `n0 … n{N-1}`.
    Size(usize),
    /// Explicitly named nodes. Names that are all digits are reserved for
    /// [`NetworkSpec::Size`] and rejected by the parser.
    Named(Vec<Symbol>),
}

impl NetworkSpec {
    /// Materializes the network.
    pub fn build(&self) -> Result<Network, String> {
        match self {
            NetworkSpec::Size(0) => Err("a network needs at least one node".to_string()),
            NetworkSpec::Size(n) => Ok(Network::with_size(*n)),
            NetworkSpec::Named(names) if names.is_empty() => {
                Err("a network needs at least one node".to_string())
            }
            NetworkSpec::Named(names) => {
                Ok(Network::new(names.iter().map(|n| Node::new(n.as_str()))))
            }
        }
    }
}

impl fmt::Display for NetworkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkSpec::Size(n) => write!(f, "({n})"),
            NetworkSpec::Named(names) => {
                write!(f, "{{")?;
                for (i, name) in names.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{name}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// The scenario form of the `pc` policy-file format: an explicit per-fact
/// distribution policy — which nodes each listed fact goes to, plus the
/// default nodes receiving every unlisted fact.
///
/// The assignment map is canonical (nodes sorted, facts as a set), so the
/// pretty-printer's output re-parses to an equal value; the default node
/// list keeps its written order (it is an argument list, not a set).
/// Node names must satisfy [`ExplicitSpec::is_node_name`] — in particular
/// an assignment key may not be the reserved word `default` — which both
/// the stanza parser and the binary decoder enforce, so every parsed *or
/// decoded* spec survives the print∘parse round trip.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExplicitSpec {
    /// Per-node fact assignments.
    pub assignments: BTreeMap<Symbol, Instance>,
    /// Nodes receiving every fact not listed in `assignments`.
    pub default: Vec<Symbol>,
}

impl ExplicitSpec {
    /// Whether `name` can appear as a node name in the textual stanza: the
    /// scenario identifier charset (alphanumerics, `_`, `'`, interior
    /// dashes), non-empty.
    pub fn is_node_name(name: &str) -> bool {
        !name.is_empty()
            && name.bytes().enumerate().all(|(i, b)| {
                b.is_ascii_alphanumeric() || b == b'_' || b == b'\'' || (b == b'-' && i > 0)
            })
            && !name.ends_with('-')
    }

    /// Checks the invariants the textual format relies on (see the type
    /// docs); the parser upholds them by construction, the binary decoder
    /// by calling this.
    fn validate(&self) -> Result<(), String> {
        for name in self.assignments.keys() {
            if name.as_str() == "default" {
                return Err("'default' is reserved and cannot name a policy node".to_string());
            }
            if !ExplicitSpec::is_node_name(name.as_str()) {
                return Err(format!("'{name}' is not a node name"));
            }
        }
        for name in &self.default {
            if !ExplicitSpec::is_node_name(name.as_str()) {
                return Err(format!("'{name}' is not a node name"));
            }
        }
        Ok(())
    }

    /// Materializes the [`ExplicitPolicy`]: the network is every node
    /// mentioned anywhere in the spec, each listed fact maps to the nodes
    /// whose entries list it, and unlisted facts map to the default nodes.
    pub fn build(&self) -> Result<Box<dyn DistributionPolicy>, String> {
        self.build_policy()
            .map(|p| Box::new(p) as Box<dyn DistributionPolicy>)
    }

    /// [`ExplicitSpec::build`] with the concrete policy type — the one
    /// materialization of the `pc` policy-file semantics (the CLI's
    /// policy-file loader delegates here too).
    pub fn build_policy(&self) -> Result<ExplicitPolicy, String> {
        if self.assignments.is_empty() && self.default.is_empty() {
            return Err("the policy stanza assigns no facts".to_string());
        }
        let mut network = Network::default();
        for name in self.assignments.keys().chain(self.default.iter()) {
            network.add(Node::new(name.as_str()));
        }
        let default_nodes: Vec<Node> = self.default.iter().map(|n| Node::new(n.as_str())).collect();
        let mut policy = ExplicitPolicy::new(network).with_default(default_nodes);
        let mut by_fact: BTreeMap<&Fact, Vec<Node>> = BTreeMap::new();
        for (node, facts) in &self.assignments {
            for fact in facts.facts() {
                by_fact
                    .entry(fact)
                    .or_default()
                    .push(Node::new(node.as_str()));
            }
        }
        for (fact, nodes) in by_fact {
            policy.assign(fact.clone(), nodes);
        }
        Ok(policy)
    }
}

impl fmt::Display for ExplicitSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "policy {{")?;
        for (node, facts) in &self.assignments {
            write!(f, "  {node}:")?;
            for fact in facts.facts() {
                write!(f, " {fact}")?;
            }
            writeln!(f)?;
        }
        if !self.default.is_empty() {
            write!(f, "  default:")?;
            for node in &self.default {
                write!(f, " {node}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "}}")
    }
}

/// One round's distribution policy, by name and parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolicySpec {
    /// Every fact — listed or produced by a later round — to every node.
    Broadcast(NetworkSpec),
    /// The scenario instance's facts dealt round-robin over the nodes
    /// (facts produced by later rounds are skipped, as the CLI's
    /// `round-robin:<n>` spec does).
    RoundRobin(NetworkSpec),
    /// Single-key hash partitioning on the query's first join variable
    /// (`workloads::hash_join_policy`).
    Hash {
        /// Number of hash buckets (= nodes).
        buckets: usize,
    },
    /// A Hypercube policy: one uniform budget, or per-dimension bucket
    /// counts (one per query variable).
    Hypercube {
        /// Bucket counts; length 1 means a uniform budget per dimension.
        buckets: Vec<usize>,
    },
    /// The scenario's explicit per-fact policy (its `policy { … }` stanza);
    /// built through [`Scenario::build_schedule`], which owns the stanza.
    Explicit,
}

impl PolicySpec {
    /// Builds the concrete policy for `query` over `instance` (round-robin
    /// enumerates the instance's facts; the hash-based policies only need
    /// the query).
    pub fn build(
        &self,
        query: &ConjunctiveQuery,
        instance: &Instance,
    ) -> Result<Box<dyn DistributionPolicy>, String> {
        match self {
            PolicySpec::Broadcast(network) => {
                let network = network.build()?;
                Ok(Box::new(
                    ExplicitPolicy::new(network.clone()).with_default(network.nodes()),
                ))
            }
            PolicySpec::RoundRobin(network) => {
                let network = network.build()?;
                Ok(Box::new(ExplicitPolicy::round_robin(&network, instance)))
            }
            PolicySpec::Hash { buckets } => hash_join_policy(query, *buckets)
                .map(|p| Box::new(p) as Box<dyn DistributionPolicy>),
            PolicySpec::Hypercube { buckets } => {
                let policy = match buckets.as_slice() {
                    [] => return Err("hypercube needs at least one bucket count".to_string()),
                    [budget] => HypercubePolicy::uniform(query, *budget),
                    per_dimension => {
                        let dims = query.variables().len();
                        if per_dimension.len() != dims {
                            return Err(format!(
                                "hypercube lists {} bucket counts, but the query has {dims} variables",
                                per_dimension.len()
                            ));
                        }
                        HypercubePolicy::with_buckets(query, per_dimension)
                    }
                };
                policy
                    .map(|p| Box::new(p) as Box<dyn DistributionPolicy>)
                    .map_err(|e| format!("hypercube policy: {e}"))
            }
            PolicySpec::Explicit => Err(
                "an 'explicit' schedule entry is built from the scenario's policy stanza \
                 (use Scenario::build_schedule)"
                    .to_string(),
            ),
        }
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicySpec::Broadcast(network) => write!(f, "broadcast{network}"),
            PolicySpec::RoundRobin(network) => write!(f, "round-robin{network}"),
            PolicySpec::Hash { buckets } => write!(f, "hash({buckets})"),
            PolicySpec::Hypercube { buckets } => {
                write!(f, "hypercube(")?;
                for (i, b) in buckets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            PolicySpec::Explicit => write!(f, "explicit"),
        }
    }
}

/// A complete distributed-evaluation scenario: everything `pcq-analyze run`
/// needs, in one parseable, printable, binary-encodable value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// The conjunctive queries to evaluate, in order (non-empty). A
    /// one-element sequence is the classic single-query scenario; longer
    /// sequences run under the multi-query engine, which checks
    /// transferability between consecutive queries and elides the
    /// reshuffle where it holds.
    pub queries: Vec<ConjunctiveQuery>,
    /// The initial database instance.
    pub instance: Instance,
    /// The explicit per-fact policy stanza, if the file has one (required
    /// when the schedule contains [`PolicySpec::Explicit`]).
    pub policy: Option<ExplicitSpec>,
    /// Per-round policy specs (the last one repeats past the end).
    pub schedule: Vec<PolicySpec>,
    /// Maximum number of rounds (≥ 1; the run may stop earlier at the
    /// fixpoint).
    pub rounds: usize,
    /// Optional feedback relation: each round's outputs re-enter the next
    /// round renamed into this relation.
    pub feedback: Option<Symbol>,
}

impl Scenario {
    /// Parses a scenario file (see the module docs for the grammar).
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        Parser::new(text).scenario()
    }

    /// The scenario's first (for most scenarios: only) query. The sequence
    /// is non-empty by construction — both the parser and the binary
    /// decoder reject empty `queries`.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.queries[0]
    }

    /// Builds the concrete per-round policies of the schedule. `explicit`
    /// entries are built from the scenario's policy stanza; query-derived
    /// policies (hash, hypercube) are shaped by the **first** query — in a
    /// multi-query scenario later queries either run on the shards that
    /// policy placed (elision) or re-shard under it.
    pub fn build_schedule(&self) -> Result<Vec<Box<dyn DistributionPolicy>>, String> {
        self.schedule
            .iter()
            .map(|spec| {
                match spec {
                    PolicySpec::Explicit => self
                        .policy
                        .as_ref()
                        .ok_or_else(|| {
                            "the schedule says 'explicit' but the scenario has no policy stanza"
                                .to_string()
                        })
                        .and_then(ExplicitSpec::build),
                    other => other.build(self.query(), &self.instance),
                }
                .map_err(|e| format!("schedule entry '{spec}': {e}"))
            })
            .collect()
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "% pcq scenario")?;
        match self.queries.as_slice() {
            [query] => writeln!(f, "query {query}")?,
            queries => {
                writeln!(f, "queries {{")?;
                for query in queries {
                    writeln!(f, "  {query}")?;
                }
                writeln!(f, "}}")?;
            }
        }
        writeln!(f, "instance {{")?;
        for fact in self.instance.facts() {
            writeln!(f, "  {fact}.")?;
        }
        writeln!(f, "}}")?;
        if let Some(policy) = &self.policy {
            write!(f, "{policy}")?;
        }
        write!(f, "schedule ")?;
        for (i, policy) in self.schedule.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{policy}")?;
        }
        writeln!(f)?;
        writeln!(f, "rounds {}", self.rounds)?;
        if let Some(feedback) = self.feedback {
            writeln!(f, "feedback {feedback}")?;
        }
        Ok(())
    }
}

impl Encode for Scenario {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.queries.len());
        for query in &self.queries {
            query.encode(enc);
        }
        self.instance.encode(enc);
        self.policy.encode(enc);
        enc.usize(self.schedule.len());
        for policy in &self.schedule {
            policy.encode(enc);
        }
        enc.usize(self.rounds);
        self.feedback.encode(enc);
    }
}

impl Decode for Scenario {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let count = dec.usize()?;
        if count == 0 {
            return Err(DecodeError::Invalid("scenario has no queries".to_string()));
        }
        let mut queries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            queries.push(ConjunctiveQuery::decode(dec)?);
        }
        let instance = Instance::decode(dec)?;
        let policy = Option::<ExplicitSpec>::decode(dec)?;
        let schedule = Vec::<PolicySpec>::decode(dec)?;
        if schedule.is_empty() {
            return Err(DecodeError::Invalid(
                "scenario has an empty schedule".to_string(),
            ));
        }
        if schedule.contains(&PolicySpec::Explicit) && policy.is_none() {
            return Err(DecodeError::Invalid(
                "scenario schedule says 'explicit' but carries no policy stanza".to_string(),
            ));
        }
        let rounds = dec.usize()?;
        if rounds == 0 {
            return Err(DecodeError::Invalid("scenario has rounds 0".to_string()));
        }
        let feedback = Option::<Symbol>::decode(dec)?;
        Ok(Scenario {
            queries,
            instance,
            policy,
            schedule,
            rounds,
            feedback,
        })
    }
}

impl Encode for ExplicitSpec {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.assignments.len());
        for (node, facts) in &self.assignments {
            node.encode(enc);
            facts.encode(enc);
        }
        self.default.encode(enc);
    }
}

impl Decode for ExplicitSpec {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let entries = dec.usize()?;
        let mut assignments = BTreeMap::new();
        for _ in 0..entries {
            let node = Symbol::decode(dec)?;
            let facts = Instance::decode(dec)?;
            assignments.insert(node, facts);
        }
        let default = Vec::<Symbol>::decode(dec)?;
        let spec = ExplicitSpec {
            assignments,
            default,
        };
        // Decoded specs must satisfy the same naming invariants the stanza
        // parser enforces, or printing them would not re-parse (e.g. a node
        // literally named "default" would print as the default-nodes line).
        spec.validate()
            .map_err(|message| DecodeError::Invalid(format!("policy stanza: {message}")))?;
        Ok(spec)
    }
}

const TAG_BROADCAST: u8 = 0;
const TAG_ROUND_ROBIN: u8 = 1;
const TAG_HASH: u8 = 2;
const TAG_HYPERCUBE: u8 = 3;
const TAG_EXPLICIT: u8 = 4;

impl Encode for PolicySpec {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            PolicySpec::Broadcast(network) => {
                enc.byte(TAG_BROADCAST);
                network.encode(enc);
            }
            PolicySpec::RoundRobin(network) => {
                enc.byte(TAG_ROUND_ROBIN);
                network.encode(enc);
            }
            PolicySpec::Hash { buckets } => {
                enc.byte(TAG_HASH);
                enc.usize(*buckets);
            }
            PolicySpec::Hypercube { buckets } => {
                enc.byte(TAG_HYPERCUBE);
                buckets.encode(enc);
            }
            PolicySpec::Explicit => enc.byte(TAG_EXPLICIT),
        }
    }
}

impl Decode for PolicySpec {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.byte()? {
            TAG_BROADCAST => Ok(PolicySpec::Broadcast(NetworkSpec::decode(dec)?)),
            TAG_ROUND_ROBIN => Ok(PolicySpec::RoundRobin(NetworkSpec::decode(dec)?)),
            TAG_HASH => Ok(PolicySpec::Hash {
                buckets: dec.usize()?,
            }),
            TAG_HYPERCUBE => Ok(PolicySpec::Hypercube {
                buckets: Vec::<usize>::decode(dec)?,
            }),
            TAG_EXPLICIT => Ok(PolicySpec::Explicit),
            tag => Err(DecodeError::UnknownTag {
                context: "PolicySpec",
                tag,
            }),
        }
    }
}

impl Encode for NetworkSpec {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            NetworkSpec::Size(n) => {
                enc.byte(0);
                enc.usize(*n);
            }
            NetworkSpec::Named(names) => {
                enc.byte(1);
                names.encode(enc);
            }
        }
    }
}

impl Decode for NetworkSpec {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.byte()? {
            0 => Ok(NetworkSpec::Size(dec.usize()?)),
            1 => Ok(NetworkSpec::Named(Vec::<Symbol>::decode(dec)?)),
            tag => Err(DecodeError::UnknownTag {
                context: "NetworkSpec",
                tag,
            }),
        }
    }
}

/// Recursive-descent scenario parser, in the style of `cq::parser` (which
/// it delegates to for the embedded query and facts).
struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ScenarioError {
        ScenarioError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    fn skip_ws(&mut self) {
        let bytes = self.bytes();
        while self.pos < bytes.len() {
            let c = bytes[self.pos];
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'%' || c == b'#' {
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ScenarioError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", c as char)))
        }
    }

    /// An identifier in the cq charset, optionally extended with interior
    /// dashes (for the `round-robin` keyword).
    fn ident(&mut self) -> Result<&'a str, ScenarioError> {
        self.skip_ws();
        let bytes = self.bytes();
        let start = self.pos;
        while self.pos < bytes.len() {
            let c = bytes[self.pos];
            let interior_dash = c == b'-' && self.pos > start;
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' || interior_dash {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected an identifier"));
        }
        Ok(&self.input[start..self.pos])
    }

    fn number(&mut self) -> Result<usize, ScenarioError> {
        let word = self.ident()?;
        word.parse()
            .map_err(|_| self.error(format!("'{word}' is not a number")))
    }

    /// Captures the text up to and including the next `terminator`
    /// (exclusive in the returned slice) and hands it to `parse`. A
    /// terminator inside a `%`/`#` line comment does not count — the
    /// captured text keeps its comments (the `cq` parsers skip them too).
    fn delegate<T>(
        &mut self,
        terminator: u8,
        what: &str,
        parse: impl FnOnce(&str) -> Result<T, String>,
    ) -> Result<T, ScenarioError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.bytes();
        while self.pos < bytes.len() && bytes[self.pos] != terminator {
            if bytes[self.pos] == b'%' || bytes[self.pos] == b'#' {
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                self.pos += 1;
            }
        }
        if self.pos == bytes.len() {
            return Err(ScenarioError {
                position: start,
                message: format!("unterminated {what}: expected '{}'", terminator as char),
            });
        }
        let text = &self.input[start..self.pos];
        self.pos += 1; // consume the terminator
        parse(text).map_err(|message| ScenarioError {
            position: start,
            message,
        })
    }

    fn network_spec(&mut self) -> Result<NetworkSpec, ScenarioError> {
        self.skip_ws();
        if self.eat(b'(') {
            let n = self.number()?;
            self.skip_ws();
            self.expect(b')')?;
            return Ok(NetworkSpec::Size(n));
        }
        self.expect(b'{')
            .map_err(|_| self.error("expected '(size)' or '{node names}'"))?;
        let mut names = Vec::new();
        loop {
            self.skip_ws();
            if self.eat(b'}') {
                break;
            }
            let name = self.ident()?;
            if name.bytes().all(|b| b.is_ascii_digit()) {
                return Err(self.error(format!(
                    "node name '{name}' is all digits; use ({name}) for a sized network"
                )));
            }
            names.push(Symbol::new(name));
        }
        if names.is_empty() {
            return Err(self.error("a named network needs at least one node"));
        }
        Ok(NetworkSpec::Named(names))
    }

    fn policy(&mut self) -> Result<PolicySpec, ScenarioError> {
        let name = self.ident()?;
        match name {
            "broadcast" => Ok(PolicySpec::Broadcast(self.network_spec()?)),
            "round-robin" => Ok(PolicySpec::RoundRobin(self.network_spec()?)),
            "hash" => {
                self.skip_ws();
                self.expect(b'(')?;
                let buckets = self.number()?;
                self.skip_ws();
                self.expect(b')')?;
                Ok(PolicySpec::Hash { buckets })
            }
            "hypercube" => {
                self.skip_ws();
                self.expect(b'(')?;
                let mut buckets = vec![self.number()?];
                loop {
                    self.skip_ws();
                    if self.eat(b')') {
                        break;
                    }
                    self.expect(b',')?;
                    buckets.push(self.number()?);
                }
                Ok(PolicySpec::Hypercube { buckets })
            }
            "explicit" => Ok(PolicySpec::Explicit),
            other => Err(self.error(format!(
                "unknown policy '{other}' (expected broadcast, round-robin, hash, \
                 hypercube or explicit)"
            ))),
        }
    }

    /// Captures one policy-stanza entry body: everything up to the next
    /// newline, `;` or `}` (the `}` is left for the stanza loop). A `%`/`#`
    /// comment ends the body early and is skipped to its end of line.
    fn entry_body(&mut self) -> &'a str {
        let bytes = self.bytes();
        let start = self.pos;
        let mut end = self.pos;
        while self.pos < bytes.len() {
            match bytes[self.pos] {
                b'\n' | b';' => {
                    self.pos += 1; // consume the terminator
                    return &self.input[start..end];
                }
                b'}' => return &self.input[start..end],
                b'%' | b'#' => {
                    while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => {
                    self.pos += 1;
                    end = self.pos;
                }
            }
        }
        &self.input[start..end]
    }

    /// Parses the body of a `policy { … }` stanza (the `{` is already
    /// consumed): `node: facts…` entries plus at most one
    /// `default: nodes…` line.
    fn policy_stanza(&mut self) -> Result<ExplicitSpec, ScenarioError> {
        let mut spec = ExplicitSpec::default();
        let mut saw_default = false;
        loop {
            self.skip_ws();
            if self.eat(b'}') {
                break;
            }
            if self.eat(b';') {
                continue;
            }
            if self.pos == self.input.len() {
                return Err(self.error("unterminated policy stanza: expected '}'"));
            }
            let entry_at = self.pos;
            let name = self.ident()?;
            self.skip_ws();
            self.expect(b':')
                .map_err(|_| self.error(format!("expected ':' after '{name}'")))?;
            let body = self.entry_body();
            if name == "default" {
                if saw_default {
                    return Err(ScenarioError {
                        position: entry_at,
                        message: "duplicate 'default' line in the policy stanza".to_string(),
                    });
                }
                saw_default = true;
                for node in body.split_whitespace() {
                    if !ExplicitSpec::is_node_name(node) {
                        return Err(ScenarioError {
                            position: entry_at,
                            message: format!("'{node}' is not a node name"),
                        });
                    }
                    spec.default.push(Symbol::new(node));
                }
            } else {
                if !ExplicitSpec::is_node_name(name) {
                    return Err(ScenarioError {
                        position: entry_at,
                        message: format!("'{name}' is not a node name"),
                    });
                }
                let facts = cq::parse_instance(body).map_err(|e| ScenarioError {
                    position: entry_at,
                    message: format!("in policy entry '{name}': {e}"),
                })?;
                spec.assignments
                    .entry(Symbol::new(name))
                    .or_default()
                    .extend(facts.facts().cloned());
            }
        }
        if spec.assignments.is_empty() && spec.default.is_empty() {
            return Err(self.error("the policy stanza assigns no facts"));
        }
        Ok(spec)
    }

    fn scenario(&mut self) -> Result<Scenario, ScenarioError> {
        let mut queries: Option<Vec<ConjunctiveQuery>> = None;
        let mut instance: Option<Instance> = None;
        let mut policy: Option<ExplicitSpec> = None;
        let mut schedule: Option<Vec<PolicySpec>> = None;
        let mut rounds: Option<usize> = None;
        let mut feedback: Option<Symbol> = None;
        loop {
            self.skip_ws();
            if self.pos == self.input.len() {
                break;
            }
            let keyword_at = self.pos;
            let keyword = self.ident()?;
            let duplicate = |p: &Parser<'_>| ScenarioError {
                position: keyword_at,
                message: format!("duplicate '{}' stanza", &p.input[keyword_at..p.pos]),
            };
            match keyword {
                "query" => {
                    if queries.is_some() {
                        return Err(duplicate(self));
                    }
                    // A query ends at its first '.', which cannot occur in
                    // an identifier — capture through it and let cq parse.
                    queries = Some(vec![self.delegate(b'.', "query", |text| {
                        ConjunctiveQuery::parse(&format!("{text}."))
                            .map_err(|e| format!("in query stanza: {e}"))
                    })?]);
                }
                "queries" => {
                    if queries.is_some() {
                        return Err(duplicate(self));
                    }
                    self.skip_ws();
                    self.expect(b'{')?;
                    let mut sequence = Vec::new();
                    loop {
                        self.skip_ws();
                        if self.eat(b'}') {
                            break;
                        }
                        if self.pos == self.input.len() {
                            return Err(
                                self.error("unterminated queries stanza: expected '}'")
                            );
                        }
                        sequence.push(self.delegate(b'.', "query", |text| {
                            ConjunctiveQuery::parse(&format!("{text}."))
                                .map_err(|e| format!("in queries stanza: {e}"))
                        })?);
                    }
                    if sequence.is_empty() {
                        return Err(ScenarioError {
                            position: keyword_at,
                            message: "the queries stanza lists no queries".to_string(),
                        });
                    }
                    queries = Some(sequence);
                }
                "instance" => {
                    if instance.is_some() {
                        return Err(duplicate(self));
                    }
                    self.skip_ws();
                    self.expect(b'{')?;
                    instance = Some(self.delegate(b'}', "instance block", |text| {
                        cq::parse_instance(text).map_err(|e| format!("in instance stanza: {e}"))
                    })?);
                }
                "policy" => {
                    if policy.is_some() {
                        return Err(duplicate(self));
                    }
                    self.skip_ws();
                    self.expect(b'{')?;
                    policy = Some(self.policy_stanza()?);
                }
                "schedule" => {
                    if schedule.is_some() {
                        return Err(duplicate(self));
                    }
                    let mut policies = vec![self.policy()?];
                    loop {
                        self.skip_ws();
                        if self.eat(b',') {
                            policies.push(self.policy()?);
                        } else {
                            break;
                        }
                    }
                    schedule = Some(policies);
                }
                "rounds" => {
                    if rounds.is_some() {
                        return Err(duplicate(self));
                    }
                    let n = self.number()?;
                    if n == 0 {
                        return Err(self.error("rounds must be at least 1"));
                    }
                    rounds = Some(n);
                }
                "feedback" => {
                    if feedback.is_some() {
                        return Err(duplicate(self));
                    }
                    let name = self.ident()?;
                    if name.contains('-') {
                        return Err(self.error(format!(
                            "feedback relation '{name}' is not a cq identifier"
                        )));
                    }
                    feedback = Some(Symbol::new(name));
                }
                other => {
                    return Err(ScenarioError {
                        position: keyword_at,
                        message: format!(
                            "unknown stanza '{other}' (expected query, queries, instance, policy, schedule, rounds or feedback)"
                        ),
                    })
                }
            }
        }
        let queries = queries.ok_or(ScenarioError {
            position: self.input.len(),
            message: "scenario has no 'query' stanza".to_string(),
        })?;
        let instance = instance.ok_or(ScenarioError {
            position: self.input.len(),
            message: "scenario has no 'instance' stanza".to_string(),
        })?;
        let schedule = schedule.ok_or(ScenarioError {
            position: self.input.len(),
            message: "scenario has no 'schedule' stanza".to_string(),
        })?;
        if schedule.contains(&PolicySpec::Explicit) && policy.is_none() {
            return Err(ScenarioError {
                position: self.input.len(),
                message: "the schedule says 'explicit' but the scenario has no 'policy' stanza"
                    .to_string(),
            });
        }
        Ok(Scenario {
            queries,
            instance,
            policy,
            schedule,
            rounds: rounds.unwrap_or(1),
            feedback,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            queries: vec![ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap()],
            instance: cq::parse_instance("R(a, b). R(b, c). R(c, d).").unwrap(),
            policy: None,
            schedule: vec![
                PolicySpec::Hash { buckets: 3 },
                PolicySpec::Hypercube { buckets: vec![2] },
            ],
            rounds: 6,
            feedback: Some(Symbol::new("R")),
        }
    }

    fn sample_explicit() -> Scenario {
        let mut assignments = BTreeMap::new();
        assignments.insert(
            Symbol::new("n0"),
            cq::parse_instance("R(a, b). R(b, c).").unwrap(),
        );
        assignments.insert(Symbol::new("n1"), cq::parse_instance("R(b, c).").unwrap());
        Scenario {
            queries: vec![ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap()],
            instance: cq::parse_instance("R(a, b). R(b, c). R(c, d).").unwrap(),
            policy: Some(ExplicitSpec {
                assignments,
                default: vec![Symbol::new("n0"), Symbol::new("n1")],
            }),
            schedule: vec![PolicySpec::Explicit, PolicySpec::Hash { buckets: 2 }],
            rounds: 2,
            feedback: None,
        }
    }

    fn sample_multi() -> Scenario {
        Scenario {
            queries: vec![
                ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z), R(y, y).").unwrap(),
                ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap(),
            ],
            instance: cq::parse_instance("R(a, a). R(a, b). R(b, c).").unwrap(),
            policy: None,
            schedule: vec![PolicySpec::Broadcast(NetworkSpec::Size(2))],
            rounds: 4,
            feedback: None,
        }
    }

    #[test]
    fn pretty_printed_scenarios_re_parse_to_equal_values() {
        for s in [sample(), sample_multi()] {
            let text = s.to_string();
            let back = Scenario::parse(&text).unwrap();
            assert_eq!(back, s, "pretty-printer output:\n{text}");
        }
    }

    #[test]
    fn multi_query_scenarios_parse_print_and_encode() {
        let text = "
            % two-hop after the loop query: PC transfers, the reshuffle
            % can be elided
            queries {
              T(x, z) :- R(x, y), R(y, z), R(y, y).
              T(x, z) :- R(x, y), R(y, z).
            }
            instance { R(a, a). R(a, b). R(b, c). }
            schedule broadcast(2)
            rounds 4
        ";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s, sample_multi());
        assert_eq!(s.queries.len(), 2);
        assert_eq!(s.query(), &s.queries[0]);
        // printer output uses the block form and re-parses exactly
        let printed = s.to_string();
        assert!(printed.contains("queries {"), "{printed}");
        assert_eq!(Scenario::parse(&printed).unwrap(), s);
        // and the binary codec agrees
        let bytes = crate::frame::encode_frame(&s);
        assert_eq!(crate::frame::decode_frame::<Scenario>(&bytes).unwrap(), s);
    }

    #[test]
    fn single_query_scenarios_keep_the_query_stanza_form() {
        // Backward compatibility: one query prints as `query …`, never as
        // a one-element block.
        let printed = sample().to_string();
        assert!(printed.contains("query T("), "{printed}");
        assert!(!printed.contains("queries {"), "{printed}");
    }

    #[test]
    fn malformed_query_sequences_are_rejected() {
        let tail = "instance { R(a). }\nschedule hash(2)";
        for (text, needle) in [
            (format!("queries {{ }}\n{tail}"), "lists no queries"),
            (
                "queries { T(x) :- R(x). T(y) :- R(y).".to_string(),
                "unterminated queries stanza",
            ),
            (
                format!("query T(x) :- R(x).\nqueries {{ T(x) :- R(x). }}\n{tail}"),
                "duplicate",
            ),
            (
                format!("queries {{ T(x) :- R(x). }}\nquery T(x) :- R(x).\n{tail}"),
                "duplicate",
            ),
        ] {
            let err = Scenario::parse(&text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{text:?} gave {err} (wanted {needle:?})"
            );
        }
    }

    #[test]
    fn parses_a_hand_written_file_with_comments() {
        let text = "
            % transitive closure by repeated squaring (cf. sec 3.5.)
            query T(x, z) :- % squaring step, i.e. R∘R.
                  R(x, y), R(y, z).
            instance {
              R(a, b). R(b, c)   # separators are flexible, {braces} too
              R(c, d).
            }
            schedule broadcast(2), hypercube(2, 2, 2)
            rounds 8
            feedback R
        ";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.instance.len(), 3);
        assert_eq!(s.rounds, 8);
        assert_eq!(s.feedback, Some(Symbol::new("R")));
        assert_eq!(
            s.schedule,
            vec![
                PolicySpec::Broadcast(NetworkSpec::Size(2)),
                PolicySpec::Hypercube {
                    buckets: vec![2, 2, 2]
                },
            ]
        );
        // and it round-trips through the printer too
        assert_eq!(Scenario::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn named_networks_parse_and_roundtrip() {
        let text = "
            query T(x) :- R(x, y).
            instance { R(a, b). }
            schedule round-robin{east west}, broadcast{solo}
        ";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(
            s.schedule[0],
            PolicySpec::RoundRobin(NetworkSpec::Named(vec![
                Symbol::new("east"),
                Symbol::new("west")
            ]))
        );
        assert_eq!(s.rounds, 1);
        assert_eq!(Scenario::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn rejects_malformed_scenarios_with_positions() {
        for (text, needle) in [
            ("instance { R(a). }\nschedule hash(2)", "no 'query'"),
            ("query T(x) :- R(x).", "no 'instance'"),
            ("query T(x) :- R(x).\ninstance { R(a). }", "no 'schedule'"),
            ("query T(x) :- R(x).\nquery T(y) :- R(y).", "duplicate"),
            ("frobnicate 3", "unknown stanza"),
            (
                "query T(x) :- R(x).\ninstance { R(a). }\nschedule teleport(3)",
                "unknown policy",
            ),
            (
                "query T(x) :- R(x).\ninstance { R(a). }\nschedule hash(2)\nrounds 0",
                "at least 1",
            ),
            (
                "query T(x) :- R(x).\ninstance { R(a). }\nschedule broadcast{12}",
                "all digits",
            ),
            ("query T(x) :- R(x, y", "unterminated"),
            (
                "query T(w) :- R(x).\ninstance { }\nschedule hash(2)",
                "query stanza",
            ),
        ] {
            let err = Scenario::parse(text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{text:?} gave {err} (wanted {needle:?})"
            );
        }
    }

    #[test]
    fn schedules_build_into_working_policies() {
        let s = Scenario::parse(
            "query T(x, z) :- R(x, y), S(y, z).
             instance { R(a, b). S(b, c). R(c, d). S(d, e). }
             schedule broadcast(3), round-robin(2), hash(4), hypercube(2)",
        )
        .unwrap();
        let policies = s.build_schedule().unwrap();
        assert_eq!(policies.len(), 4);
        assert_eq!(policies[0].network().len(), 3);
        assert_eq!(policies[1].network().len(), 2);
        assert_eq!(policies[2].network().len(), 4);
        // a broadcast round is parallel-correct: one round must match
        let outcome = distribution::OneRoundEngine::new(policies[0].as_ref())
            .evaluate(s.query(), &s.instance);
        assert_eq!(outcome.result, cq::evaluate(s.query(), &s.instance));
    }

    #[test]
    fn bad_schedule_parameters_fail_at_build_time() {
        let s = Scenario::parse(
            "query T(x, z) :- R(x, y), R(y, z).
             instance { R(a, b). }
             schedule hypercube(2, 2)",
        )
        .unwrap();
        let err = match s.build_schedule() {
            Ok(_) => panic!("mismatched hypercube dimensions must not build"),
            Err(err) => err,
        };
        assert!(err.contains("3 variables"), "{err}");

        let s = Scenario::parse("query T(x) :- R(x).\ninstance { R(a). }\nschedule broadcast(0)")
            .unwrap();
        assert!(s.build_schedule().is_err());
    }

    #[test]
    fn scenarios_round_trip_through_the_binary_codec() {
        for s in [sample(), sample_explicit()] {
            let bytes = crate::frame::encode_frame(&s);
            let back: Scenario = crate::frame::decode_frame(&bytes).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn policy_stanza_parses_prints_and_reparses() {
        let s = sample_explicit();
        let text = s.to_string();
        assert!(
            text.contains("policy {"),
            "printer must emit the stanza:\n{text}"
        );
        assert!(text.contains("schedule explicit, hash(2)"));
        let back = Scenario::parse(&text).unwrap();
        assert_eq!(back, s, "printed scenario:\n{text}");
    }

    #[test]
    fn hand_written_policy_stanzas_parse() {
        // Newline- and semicolon-terminated entries, duplicate node lines
        // merging, comments, and the default line — the pc policy-file
        // format embedded in a scenario.
        let s = Scenario::parse(
            "query T(x, z) :- R(x, y), R(y, z), R(x, x).
             instance { R(a, a). R(a, b). R(b, a). R(b, b). }
             policy {
               n0: R(a, a) R(b, a)   % the loop lives on both
               n0: R(b, b)           # merges with the line above
               n1: R(a, a), R(a, b); n1: R(b, b)
               default: n0 n1
             }
             schedule explicit",
        )
        .unwrap();
        let spec = s.policy.as_ref().unwrap();
        assert_eq!(spec.assignments[&Symbol::new("n0")].len(), 3);
        assert_eq!(spec.assignments[&Symbol::new("n1")].len(), 3);
        assert_eq!(spec.default.len(), 2);
        // Example 3.5: the policy is parallel-correct for the loop query.
        let policies = s.build_schedule().unwrap();
        let outcome = distribution::OneRoundEngine::new(policies[0].as_ref())
            .evaluate(s.query(), &s.instance);
        assert_eq!(outcome.result, cq::evaluate(s.query(), &s.instance));
        // and the whole thing round-trips
        assert_eq!(Scenario::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn explicit_policy_default_routes_unlisted_facts() {
        let s = Scenario::parse(
            "query T(x) :- R(x, y).
             instance { R(a, b). R(c, d). }
             policy {
               n0: R(a, b)
               default: n1
             }
             schedule explicit",
        )
        .unwrap();
        let policies = s.build_schedule().unwrap();
        let listed = policies[0].nodes_for(&cq::Fact::from_names("R", &["a", "b"]));
        let unlisted = policies[0].nodes_for(&cq::Fact::from_names("R", &["c", "d"]));
        assert_eq!(listed.into_iter().collect::<Vec<_>>(), [Node::new("n0")]);
        assert_eq!(unlisted.into_iter().collect::<Vec<_>>(), [Node::new("n1")]);
    }

    #[test]
    fn decoded_policy_stanzas_must_survive_the_print_parse_round_trip() {
        // A spec whose assignment key is the reserved word "default" (or
        // not a node name at all) would print as something the parser
        // cannot read back; the binary decoder must reject it instead of
        // producing a value that violates parse∘print = id.
        for bad_name in ["default", "has space", "-dash", "a-"] {
            let mut assignments = BTreeMap::new();
            assignments.insert(Symbol::new(bad_name), cq::parse_instance("R(a).").unwrap());
            let spec = ExplicitSpec {
                assignments,
                default: vec![],
            };
            let bytes = crate::frame::encode_frame(&spec);
            let err = crate::frame::decode_frame::<ExplicitSpec>(&bytes).unwrap_err();
            assert!(
                matches!(err, DecodeError::Invalid(_)),
                "node name {bad_name:?} must be rejected, got {err:?}"
            );
        }
        // Dashed-but-valid node names pass end to end, parser included.
        let s = Scenario::parse(
            "query T(x) :- R(x).\ninstance { R(a). }\n\
             policy { east-1: R(a)\n default: east-1 }\nschedule explicit",
        )
        .unwrap();
        let bytes = crate::frame::encode_frame(&s);
        assert_eq!(crate::frame::decode_frame::<Scenario>(&bytes).unwrap(), s);
        assert_eq!(Scenario::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn malformed_policy_stanzas_are_rejected() {
        let base = "query T(x) :- R(x).\ninstance { R(a). }\n";
        for (tail, needle) in [
            ("schedule explicit", "no 'policy' stanza"),
            ("policy { }\nschedule explicit", "assigns no facts"),
            ("policy { n0 R(a). }\nschedule explicit", "expected ':'"),
            (
                "policy { n0: R(a)\ndefault: n1\ndefault: n2 }\nschedule explicit",
                "duplicate 'default'",
            ),
            ("policy { n0: R(a(b)) }\nschedule explicit", "policy entry"),
            ("policy { n0: R(a)", "unterminated policy stanza"),
            (
                "policy { n0: R(a). }\npolicy { n1: R(a). }\nschedule explicit",
                "duplicate",
            ),
        ] {
            let text = format!("{base}{tail}");
            let err = Scenario::parse(&text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{tail:?} gave {err} (wanted {needle:?})"
            );
        }
    }
}
