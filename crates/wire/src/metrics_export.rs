//! JSON export of [`obs::Registry`] metrics.
//!
//! A run touches several registries — the multi-round engine owns one
//! (transfer-cache counters, round latencies), each transport owns one
//! (index-cache counters, chunk sizes; the pipelined driver adds frame
//! bytes and window waits). Their metric names are disjoint by
//! convention, so a report merges them into a single document:
//!
//! ```json
//! {"counters": {"transfer_checks": 3},
//!  "histograms": {"round_latency_us": {"count": 4, "sum": 812, "min": 101,
//!                 "max": 402, "mean": 203, "p50": 150, "p90": 402, "p99": 402}}}
//! ```
//!
//! Quantiles follow [`obs::HistogramSnapshot`] semantics: nearest-rank
//! over the retained reservoir of recent samples, exact until the
//! reservoir wraps.

use obs::{HistogramSnapshot, Registry};

use crate::json::JsonValue;

/// One histogram snapshot as a JSON object.
pub fn snapshot_json(snapshot: &HistogramSnapshot) -> JsonValue {
    JsonValue::object([
        ("count", JsonValue::from(snapshot.count)),
        ("sum", JsonValue::from(snapshot.sum)),
        ("min", JsonValue::from(snapshot.min)),
        ("max", JsonValue::from(snapshot.max)),
        ("mean", JsonValue::from(snapshot.mean())),
        ("p50", JsonValue::from(snapshot.p50)),
        ("p90", JsonValue::from(snapshot.p90)),
        ("p99", JsonValue::from(snapshot.p99)),
    ])
}

/// Renders one registry as `{"counters": {...}, "histograms": {...}}`.
pub fn registry_json(registry: &Registry) -> JsonValue {
    merged_registry_json(&[registry])
}

/// Renders several registries as one document. Counters appearing in
/// more than one registry are summed; a histogram name appearing twice
/// keeps the first occurrence (names are disjoint by convention, so this
/// only matters for pathological collisions).
pub fn merged_registry_json(registries: &[&Registry]) -> JsonValue {
    let mut counters: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut histograms: std::collections::BTreeMap<String, HistogramSnapshot> =
        std::collections::BTreeMap::new();
    for registry in registries {
        for (name, value) in registry.counters() {
            *counters.entry(name).or_default() += value;
        }
        for (name, snapshot) in registry.histograms() {
            histograms.entry(name).or_insert(snapshot);
        }
    }
    JsonValue::object([
        (
            "counters",
            JsonValue::Object(
                counters
                    .into_iter()
                    .map(|(name, value)| (name, JsonValue::from(value)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            JsonValue::Object(
                histograms
                    .iter()
                    .map(|(name, snapshot)| (name.clone(), snapshot_json(snapshot)))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_carries_counters_and_quantiles() {
        let registry = Registry::new();
        registry.counter("hits").add(3);
        let h = registry.histogram("lat_us");
        for value in [10, 20, 30, 40] {
            h.record(value);
        }
        let doc = registry_json(&registry);
        let text = doc.to_string();
        let reparsed = JsonValue::parse(&text).unwrap();
        let counters = reparsed.get("counters").unwrap();
        assert_eq!(counters.get("hits").and_then(JsonValue::as_u64), Some(3));
        let lat = reparsed.get("histograms").unwrap().get("lat_us").unwrap();
        let field = |k: &str| lat.get(k).and_then(JsonValue::as_u64).unwrap();
        assert_eq!(field("count"), 4);
        assert_eq!(field("sum"), 100);
        assert_eq!(field("mean"), 25);
        // Exported quantiles must equal the snapshot exactly.
        let snap = h.snapshot();
        assert_eq!(field("p50"), snap.p50);
        assert_eq!(field("p90"), snap.p90);
        assert_eq!(field("p99"), snap.p99);
        assert!(field("p50") <= field("p90") && field("p90") <= field("p99"));
    }

    #[test]
    fn merge_sums_counters_and_unions_histograms() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("shared").add(2);
        b.counter("shared").add(5);
        a.histogram("only_a").record(1);
        b.histogram("only_b").record(9);
        let doc = merged_registry_json(&[&a, &b]);
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("shared"))
                .and_then(JsonValue::as_u64),
            Some(7)
        );
        let histograms = doc.get("histograms").unwrap();
        assert!(histograms.get("only_a").is_some());
        assert!(histograms.get("only_b").is_some());
    }
}
