//! The cross-process transport: rounds whose local evaluation really runs
//! in other OS processes.
//!
//! [`ProcessTransport`] spawns a pool of worker subprocesses (by default
//! this same executable re-invoked as `pcq-analyze worker`) and implements
//! [`distribution::Transport`] by shipping binary-encoded
//! [`Message`] frames over the workers' stdio pipes:
//!
//! ```text
//! coordinator                        worker k
//!   EvalChunk{query, batch}  ──────▶  evaluate locally
//!   …                        ◀──────  ChunkResult{batch, eval_us}
//!   Barrier{round}           ──────▶
//!                            ◀──────  BarrierAck{round}
//!   (Drop) Shutdown          ──────▶  exit 0
//! ```
//!
//! Chunks are dealt to workers round-robin; at the barrier one scoped
//! thread per worker walks its queue in lock step (write a chunk, read its
//! result), so the pipes can never deadlock on full buffers, while the
//! workers themselves evaluate genuinely in parallel. Workers persist
//! across rounds — a multi-round run pays the spawn cost once.
//!
//! [`run_worker`] is the other side: the read-eval-respond loop behind the
//! `pcq-analyze worker` subcommand.

use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use cq::{ConjunctiveQuery, Instance};
use delta::DeltaNode;
use distribution::{Node, NodeResult, Transport, TransportError};

use crate::frame::{encode_frame, read_frame, write_frame};
use crate::message::{ChunkBatch, DeltaBatch, EvalChunkRef, EvalDeltaRef, Message};

/// The per-worker outcome of one barrier: node results plus payload bytes
/// written to that worker.
type DriveOutcome = Result<(Vec<(Node, NodeResult)>, u64), TransportError>;

/// One spawned worker subprocess with its pipe endpoints.
struct Worker {
    child: Child,
    stdin: BufWriter<ChildStdin>,
    stdout: BufReader<ChildStdout>,
}

/// One unit of work queued for a worker this round: a full chunk (classic
/// rounds) or a delta (incremental rounds).
#[derive(Clone)]
enum Job {
    Chunk(ChunkBatch),
    Delta(DeltaBatch),
}

impl Job {
    fn node(&self) -> Node {
        match self {
            Job::Chunk(batch) => batch.node,
            Job::Delta(batch) => batch.node,
        }
    }
}

/// A [`Transport`] that ships chunks to worker subprocesses over stdio
/// pipes (see the module docs for the protocol).
pub struct ProcessTransport {
    workers: Vec<Worker>,
    query: Option<ConjunctiveQuery>,
    round: u64,
    /// Per-worker job queues for the current round.
    jobs: Vec<Vec<Job>>,
    /// Stable node→worker assignment (dealt round-robin on first sight and
    /// never changed): incremental rounds keep per-node state inside the
    /// worker process, so a node must always talk to the same worker.
    worker_for: BTreeMap<Node, usize>,
    next_worker: usize,
    results: BTreeMap<Node, NodeResult>,
    /// Bytes of chunk/delta payload frames written to workers since the
    /// last [`Transport::take_bytes_shipped`] (round-control frames are
    /// O(1) and excluded).
    bytes_shipped: u64,
}

impl ProcessTransport {
    /// Spawns `workers` subprocesses of this same executable re-invoked as
    /// `worker` — the usual configuration for `pcq-analyze`.
    pub fn spawn(workers: usize) -> Result<ProcessTransport, TransportError> {
        let exe = std::env::current_exe()
            .map_err(|e| TransportError::Io(format!("cannot find current executable: {e}")))?;
        ProcessTransport::spawn_command(exe, &["worker".to_string()], workers)
    }

    /// Spawns `workers` subprocesses of an explicit `program` with `args`
    /// (each must speak the worker protocol on stdio). Tests use this to
    /// point at a freshly built `pcq-analyze`.
    pub fn spawn_command(
        program: PathBuf,
        args: &[String],
        workers: usize,
    ) -> Result<ProcessTransport, TransportError> {
        let workers = workers.max(1);
        let mut spawned = Vec::with_capacity(workers);
        for _ in 0..workers {
            let mut child = Command::new(&program)
                .args(args)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .map_err(|e| {
                    TransportError::Io(format!("cannot spawn worker {}: {e}", program.display()))
                })?;
            let stdin = child
                .stdin
                .take()
                .ok_or_else(|| TransportError::Io("worker stdin not piped".to_string()))?;
            let stdout = child
                .stdout
                .take()
                .ok_or_else(|| TransportError::Io("worker stdout not piped".to_string()))?;
            spawned.push(Worker {
                child,
                stdin: BufWriter::new(stdin),
                stdout: BufReader::new(stdout),
            });
        }
        Ok(ProcessTransport {
            workers: spawned,
            query: None,
            round: 0,
            jobs: vec![Vec::new(); workers],
            worker_for: BTreeMap::new(),
            next_worker: 0,
            results: BTreeMap::new(),
            bytes_shipped: 0,
        })
    }

    /// Number of worker subprocesses in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Queues `job` on the worker that owns its node (assigning one
    /// round-robin on first sight).
    fn enqueue(&mut self, job: Job) {
        let node = job.node();
        let worker = match self.worker_for.get(&node) {
            Some(&w) => w,
            None => {
                let w = self.next_worker;
                self.next_worker = (self.next_worker + 1) % self.workers.len();
                self.worker_for.insert(node, w);
                w
            }
        };
        self.jobs[worker].push(job);
    }
}

/// Runs one worker's queue in lock step: write a chunk or delta, read back
/// its result, repeat; then exchange `Barrier`/`BarrierAck`. Returns the
/// per-node results and the payload bytes written to the worker (the
/// honest byte-level communication volume of the round).
fn drive_worker(
    worker: &mut Worker,
    query: &ConjunctiveQuery,
    round: u64,
    jobs: &[Job],
) -> Result<(Vec<(Node, NodeResult)>, u64), TransportError> {
    let mut results = Vec::with_capacity(jobs.len());
    let mut bytes = 0u64;
    for job in jobs {
        let node = job.node();
        let frame = match job {
            Job::Chunk(batch) => encode_frame(&EvalChunkRef { query, batch }),
            Job::Delta(batch) => encode_frame(&EvalDeltaRef { query, batch }),
        };
        bytes += frame.len() as u64;
        worker
            .stdin
            .write_all(&frame)
            .and_then(|()| worker.stdin.flush())
            .map_err(|e| TransportError::Io(format!("sending work for {node}: {e}")))?;
        let reply = match read_frame::<Message>(&mut worker.stdout) {
            Ok(Some(reply)) => reply,
            Ok(None) => {
                return Err(TransportError::Io(
                    "worker closed its pipe mid-round".to_string(),
                ))
            }
            Err(e) => return Err(TransportError::Protocol(e.to_string())),
        };
        let (answered_round, answered_node, output, eval_us) = match (job, reply) {
            (Job::Chunk(_), Message::ChunkResult { batch, eval_us }) => {
                (batch.round, batch.node, batch.chunk, eval_us)
            }
            (Job::Delta(_), Message::DeltaResult { batch, eval_us }) => {
                (batch.round, batch.node, batch.delta, eval_us)
            }
            (Job::Chunk(_), other) => {
                return Err(TransportError::Protocol(format!(
                    "expected a chunk-result, worker sent {}",
                    other.kind()
                )))
            }
            (Job::Delta(_), other) => {
                return Err(TransportError::Protocol(format!(
                    "expected a delta-result, worker sent {}",
                    other.kind()
                )))
            }
        };
        if answered_round != round || answered_node != node {
            return Err(TransportError::Protocol(format!(
                "worker answered round {answered_round} node {answered_node} \
                 to a round {round} job for {node}"
            )));
        }
        results.push((
            node,
            NodeResult {
                output,
                eval_time: Duration::from_micros(eval_us),
            },
        ));
    }
    write_frame(&mut worker.stdin, &Message::Barrier { round })
        .map_err(|e| TransportError::Io(format!("sending barrier: {e}")))?;
    match read_frame::<Message>(&mut worker.stdout) {
        Ok(Some(Message::BarrierAck { round: acked })) if acked == round => Ok((results, bytes)),
        Ok(Some(other)) => Err(TransportError::Protocol(format!(
            "expected barrier-ack for round {round}, worker sent {}",
            other.kind()
        ))),
        Ok(None) => Err(TransportError::Io(
            "worker closed its pipe at the barrier".to_string(),
        )),
        Err(e) => Err(TransportError::Protocol(e.to_string())),
    }
}

impl Transport for ProcessTransport {
    fn begin_round(
        &mut self,
        round: usize,
        query: &ConjunctiveQuery,
    ) -> Result<(), TransportError> {
        self.query = Some(query.clone());
        self.round = round as u64;
        for queue in &mut self.jobs {
            queue.clear();
        }
        self.next_worker = 0;
        self.results.clear();
        Ok(())
    }

    fn send_chunk(&mut self, node: Node, chunk: Instance) -> Result<(), TransportError> {
        self.enqueue(Job::Chunk(ChunkBatch {
            round: self.round,
            node,
            chunk,
        }));
        Ok(())
    }

    fn send_delta(&mut self, node: Node, delta: Instance) -> Result<(), TransportError> {
        self.enqueue(Job::Delta(DeltaBatch {
            round: self.round,
            node,
            delta,
        }));
        Ok(())
    }

    fn barrier(&mut self) -> Result<(), TransportError> {
        let query = self
            .query
            .clone()
            .ok_or_else(|| TransportError::Protocol("barrier before begin_round".to_string()))?;
        let round = self.round;
        let jobs = std::mem::replace(&mut self.jobs, vec![Vec::new(); self.workers.len()]);
        // One scoped thread per worker with jobs; each drives its own pipes
        // so the workers evaluate concurrently.
        let outcomes: Vec<DriveOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .zip(&jobs)
                .filter(|(_, jobs)| !jobs.is_empty())
                .map(|(worker, jobs)| {
                    let query = &query;
                    scope.spawn(move || drive_worker(worker, query, round, jobs))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker driver thread panicked"))
                .collect()
        });
        for outcome in outcomes {
            let (results, bytes) = outcome?;
            self.results.extend(results);
            self.bytes_shipped += bytes;
        }
        Ok(())
    }

    fn recv_chunk(&mut self, node: Node) -> Result<NodeResult, TransportError> {
        self.results
            .remove(&node)
            .ok_or(TransportError::UnknownNode(node))
    }

    fn recv_delta(&mut self, node: Node) -> Result<NodeResult, TransportError> {
        self.recv_chunk(node)
    }

    fn take_bytes_shipped(&mut self) -> u64 {
        std::mem::take(&mut self.bytes_shipped)
    }

    fn parallelism(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ProcessTransport {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // Best-effort clean shutdown; a worker that already exited (or
            // a broken pipe) is fine — we still reap the child below.
            let _ = write_frame(&mut worker.stdin, &Message::Shutdown);
        }
        for worker in &mut self.workers {
            let _ = worker.child.wait();
        }
    }
}

/// The worker side of the protocol: reads [`Message`] frames from `input`,
/// evaluates `EvalChunk`s statelessly and `EvalDelta`s against persistent
/// per-node [`DeltaNode`] state (an `EvalDelta` for round 0 resets its
/// node — the coordinator ships every node a round-0 delta, so one worker
/// process can serve several incremental runs), acknowledges `Barrier`s,
/// and exits on `Shutdown` or a clean EOF. Returns an error message on
/// protocol or I/O failure (the CLI maps it to a non-zero exit).
pub fn run_worker(input: impl Read, output: impl Write) -> Result<(), String> {
    let mut input = BufReader::new(input);
    let mut output = BufWriter::new(output);
    let mut nodes: BTreeMap<Node, DeltaNode> = BTreeMap::new();
    loop {
        match read_frame::<Message>(&mut input) {
            Ok(None) | Ok(Some(Message::Shutdown)) => return Ok(()),
            Ok(Some(Message::EvalChunk { query, batch })) => {
                let start = Instant::now();
                let local = cq::evaluate(&query, &batch.chunk);
                let eval_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                let reply = Message::ChunkResult {
                    batch: ChunkBatch {
                        round: batch.round,
                        node: batch.node,
                        chunk: local,
                    },
                    eval_us,
                };
                write_frame(&mut output, &reply).map_err(|e| e.to_string())?;
            }
            Ok(Some(Message::EvalDelta { query, batch })) => {
                if batch.round == 0 {
                    nodes.insert(batch.node, DeltaNode::new());
                }
                let state = nodes.entry(batch.node).or_default();
                let start = Instant::now();
                let fresh = state.step(&query, &batch.delta);
                let eval_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                let reply = Message::DeltaResult {
                    batch: DeltaBatch {
                        round: batch.round,
                        node: batch.node,
                        delta: fresh,
                    },
                    eval_us,
                };
                write_frame(&mut output, &reply).map_err(|e| e.to_string())?;
            }
            Ok(Some(Message::Barrier { round })) => {
                write_frame(&mut output, &Message::BarrierAck { round })
                    .map_err(|e| e.to_string())?;
            }
            Ok(Some(other)) => {
                return Err(format!("unexpected {} message on a worker", other.kind()))
            }
            Err(e) => return Err(format!("bad frame on worker stdin: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;

    /// Drives `run_worker` entirely in memory (no subprocess): feed it a
    /// frame script, collect its reply frames.
    fn worker_script(messages: &[Message]) -> Result<Vec<Message>, String> {
        let mut input = Vec::new();
        for m in messages {
            input.extend(encode_frame(m));
        }
        let mut output = Vec::new();
        run_worker(std::io::Cursor::new(input), &mut output)?;
        let mut replies = Vec::new();
        let mut cursor = std::io::Cursor::new(output);
        while let Some(m) = read_frame::<Message>(&mut cursor).map_err(|e| e.to_string())? {
            replies.push(m);
        }
        Ok(replies)
    }

    #[test]
    fn worker_evaluates_chunks_and_acks_barriers() {
        let query = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
        let chunk = cq::parse_instance("R(a, b). R(b, c).").unwrap();
        let replies = worker_script(&[
            Message::EvalChunk {
                query: query.clone(),
                batch: ChunkBatch {
                    round: 0,
                    node: Node::numbered(0),
                    chunk: chunk.clone(),
                },
            },
            Message::Barrier { round: 0 },
            Message::Shutdown,
        ])
        .unwrap();
        assert_eq!(replies.len(), 2);
        match &replies[0] {
            Message::ChunkResult { batch, .. } => {
                assert_eq!(batch.node, Node::numbered(0));
                assert_eq!(batch.chunk, cq::evaluate(&query, &chunk));
            }
            other => panic!("expected a chunk-result, got {}", other.kind()),
        }
        assert_eq!(replies[1], Message::BarrierAck { round: 0 });
    }

    #[test]
    fn worker_accumulates_deltas_and_resets_on_round_zero() {
        let query = ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap();
        let node = Node::numbered(0);
        let delta = |round, text: &str| Message::EvalDelta {
            query: query.clone(),
            batch: DeltaBatch {
                round,
                node,
                delta: cq::parse_instance(text).unwrap(),
            },
        };
        let replies = worker_script(&[
            // Run 1: the join closes in round 1 against round-0 state.
            delta(0, "R(a, b)."),
            delta(1, "S(b, c)."),
            // Run 2 (round 0 again): state must reset, so the same S fact
            // alone derives nothing.
            delta(0, "S(b, c)."),
            Message::Shutdown,
        ])
        .unwrap();
        let outputs: Vec<&Instance> = replies
            .iter()
            .map(|m| match m {
                Message::DeltaResult { batch, .. } => &batch.delta,
                other => panic!("expected a delta-result, got {}", other.kind()),
            })
            .collect();
        assert!(outputs[0].is_empty(), "R alone joins nothing");
        assert_eq!(outputs[1], &cq::parse_instance("T(a, c).").unwrap());
        assert!(
            outputs[2].is_empty(),
            "round 0 must reset the node's state, got {}",
            outputs[2]
        );
    }

    #[test]
    fn worker_exits_cleanly_on_eof() {
        assert_eq!(worker_script(&[]), Ok(vec![]));
    }

    #[test]
    fn worker_rejects_garbage_and_misdirected_messages() {
        let mut output = Vec::new();
        let err =
            run_worker(std::io::Cursor::new(b"not a frame".to_vec()), &mut output).unwrap_err();
        assert!(err.contains("bad frame"), "{err}");

        let err = worker_script(&[Message::BarrierAck { round: 0 }]).unwrap_err();
        assert!(err.contains("unexpected"), "{err}");
    }
}
