//! The cross-process transport: rounds whose local evaluation really runs
//! in other OS processes.
//!
//! [`ProcessTransport`] spawns a pool of worker subprocesses (by default
//! this same executable re-invoked as `pcq-analyze worker`) and implements
//! [`distribution::Transport`] by shipping binary-encoded
//! [`Message`] frames over the workers' stdio pipes:
//!
//! ```text
//! coordinator                        worker k
//!   EvalChunk{query, batch}  ──────▶  evaluate locally
//!   EvalChunk{query, batch}  ──────▶  (up to `window` in flight)
//!   …                        ◀──────  ChunkResult{batch, eval_us}
//!   Barrier{round}           ──────▶
//!                            ◀──────  BarrierAck{round}
//!   (Drop) Shutdown          ──────▶  exit 0
//! ```
//!
//! Chunks are dealt to workers round-robin; at the barrier the shared
//! pipelined driver (see [`crate::driver`]) runs one thread per worker,
//! keeping up to a window of jobs in flight on each pipe while the workers
//! evaluate genuinely in parallel. Workers persist across rounds — a
//! multi-round run pays the spawn cost once. A worker that dies mid-round
//! has its unanswered jobs requeued onto the survivors (see the driver
//! docs for the delta-state rebuild); disable with
//! [`ProcessTransport::fault_tolerance`] to surface the first failure as a
//! [`TransportError`] instead.
//!
//! [`run_worker`] is the other side: the read-eval-respond loop behind the
//! `pcq-analyze worker` subcommand.

use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use cq::{ConjunctiveQuery, EvalOptions, Instance};
use delta::DeltaNode;
use distribution::{Node, NodeResult, Transport, TransportError};

use crate::driver::{Endpoint, PipelinedCore, StderrTail};
use crate::frame::{read_frame, write_frame};
use crate::message::{ChunkBatch, DeltaBatch, Message};

/// A [`Transport`] that ships chunks to worker subprocesses over stdio
/// pipes (see the module docs for the protocol).
pub struct ProcessTransport {
    core: PipelinedCore,
}

impl ProcessTransport {
    /// Spawns `workers` subprocesses of this same executable re-invoked as
    /// `worker` — the usual configuration for `pcq-analyze`.
    pub fn spawn(workers: usize) -> Result<ProcessTransport, TransportError> {
        let exe = std::env::current_exe()
            .map_err(|e| TransportError::Io(format!("cannot find current executable: {e}")))?;
        ProcessTransport::spawn_command(exe, &["worker".to_string()], workers)
    }

    /// Spawns `workers` subprocesses of an explicit `program` with `args`
    /// (each must speak the worker protocol on stdio). Tests use this to
    /// point at a freshly built `pcq-analyze`.
    pub fn spawn_command(
        program: PathBuf,
        args: &[String],
        workers: usize,
    ) -> Result<ProcessTransport, TransportError> {
        let workers = workers.max(1);
        let per_worker: Vec<Vec<String>> = (0..workers).map(|_| args.to_vec()).collect();
        ProcessTransport::spawn_commands(program, &per_worker)
    }

    /// Spawns one subprocess per argument list, letting each worker get
    /// different flags (fault-injection tests give one worker
    /// `--fail-after N`).
    pub fn spawn_commands(
        program: PathBuf,
        per_worker_args: &[Vec<String>],
    ) -> Result<ProcessTransport, TransportError> {
        let mut endpoints = Vec::with_capacity(per_worker_args.len());
        let mut children = Vec::with_capacity(per_worker_args.len());
        let mut tails = Vec::with_capacity(per_worker_args.len());
        for args in per_worker_args {
            let mut child = Command::new(&program)
                .args(args)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .map_err(|e| {
                    TransportError::Io(format!("cannot spawn worker {}: {e}", program.display()))
                })?;
            let stdin = child
                .stdin
                .take()
                .ok_or_else(|| TransportError::Io("worker stdin not piped".to_string()))?;
            let stdout = child
                .stdout
                .take()
                .ok_or_else(|| TransportError::Io("worker stdout not piped".to_string()))?;
            // Keep the worker's stderr instead of inheriting it: the tail
            // is appended to the round error if the worker dies, so panic
            // messages are not lost with the process.
            tails.push(child.stderr.take().map(StderrTail::capture));
            endpoints.push(Endpoint::new(stdin, stdout));
            children.push(Some(child));
        }
        let mut core = PipelinedCore::new(endpoints, children);
        core.set_stderr_tails(tails);
        Ok(ProcessTransport { core })
    }

    /// Number of worker subprocesses in the pool.
    pub fn worker_count(&self) -> usize {
        self.core.worker_count()
    }

    /// Workers that have not died (diagnostics; fault tests assert a kill
    /// actually happened).
    pub fn alive_workers(&self) -> usize {
        self.core.alive_workers()
    }

    /// Sets the pipelining window (jobs in flight per worker); 1 restores
    /// the historic write-one-read-one lock step. Returns `self` for
    /// builder-style construction.
    pub fn pipeline_window(mut self, window: usize) -> ProcessTransport {
        self.core.set_window(window);
        self
    }

    /// Enables (default) or disables mid-round worker-failure recovery.
    pub fn fault_tolerance(mut self, enabled: bool) -> ProcessTransport {
        self.core.set_fault_tolerance(enabled);
        self
    }

    /// Bounds how long `Drop` waits for a worker to exit after `Shutdown`
    /// before killing it (default 5 s).
    pub fn shutdown_grace(mut self, grace: Duration) -> ProcessTransport {
        self.core.set_shutdown_grace(grace);
        self
    }

    /// The driver's metrics registry: `driver_requeues`, `worker_deaths`
    /// and `state_rebuilds` accumulate here over the transport's lifetime.
    pub fn metrics_registry(&self) -> std::sync::Arc<obs::Registry> {
        self.core.registry()
    }
}

impl Transport for ProcessTransport {
    fn begin_round(
        &mut self,
        round: usize,
        query: &ConjunctiveQuery,
        options: EvalOptions,
    ) -> Result<(), TransportError> {
        self.core.begin_round(round, query, options)
    }

    fn send_chunk(&mut self, node: Node, chunk: Instance) -> Result<(), TransportError> {
        self.core.send_chunk(node, chunk)
    }

    fn send_resident(&mut self, node: Node) -> Result<(), TransportError> {
        self.core.send_resident(node)
    }

    fn send_delta(&mut self, node: Node, delta: Instance) -> Result<(), TransportError> {
        self.core.send_delta(node, delta)
    }

    fn barrier(&mut self) -> Result<(), TransportError> {
        self.core.barrier()
    }

    fn recv_chunk(&mut self, node: Node) -> Result<NodeResult, TransportError> {
        self.core.recv(node)
    }

    fn recv_delta(&mut self, node: Node) -> Result<NodeResult, TransportError> {
        self.core.recv(node)
    }

    fn take_bytes_shipped(&mut self) -> u64 {
        self.core.take_bytes_shipped()
    }

    fn parallelism(&self) -> usize {
        self.core.parallelism()
    }
}

/// The worker side of the protocol: reads [`Message`] frames from `input`,
/// evaluates `EvalChunk`s with the frame's [`EvalOptions`] (retaining each
/// node's chunk as its **resident shard**), `EvalDelta`s against
/// persistent per-node [`DeltaNode`] state (an `EvalDelta` for round 0
/// resets its node — the coordinator ships every node a round-0 delta, so
/// one worker process can serve several incremental runs), and
/// `EvalResident`s over whichever shard the node already holds (delta
/// state first, else the retained chunk, else nothing) without receiving
/// any facts; acknowledges `Barrier`s, and exits on `Shutdown` or a clean
/// EOF. Returns an error message on protocol or I/O failure (the CLI maps
/// it to a non-zero exit).
pub fn run_worker(input: impl Read, output: impl Write) -> Result<(), String> {
    run_worker_with_fault(input, output, None)
}

/// [`run_worker`] with optional fault injection: with `fail_after =
/// Some(n)`, the worker processes `n` eval jobs normally and then dies on
/// the next one — it returns an error *without replying*, guaranteeing an
/// unacknowledged job for the coordinator's requeue path. Only
/// `EvalChunk`/`EvalDelta` frames count toward `n` (barriers don't), so
/// the death point is deterministic. Exposed through `pcq-analyze worker
/// --fail-after N` for fault-injection tests and smokes.
pub fn run_worker_with_fault(
    input: impl Read,
    output: impl Write,
    fail_after: Option<u64>,
) -> Result<(), String> {
    run_worker_slowed(input, output, fail_after, 0)
}

/// [`run_worker_with_fault`] plus latency injection: `slow_eval_us > 0`
/// sleeps that long inside every eval span (before the real work), so a
/// deliberately slowed worker shows up in traces as grown
/// `worker_eval_*` phases — the fixture behind `trace diff`'s
/// regression-detection tests. Exposed through `pcq-analyze worker
/// --slow-eval-us N` and forwarded by `run --slow-eval-us N`.
pub fn run_worker_slowed(
    input: impl Read,
    output: impl Write,
    fail_after: Option<u64>,
    slow_eval_us: u64,
) -> Result<(), String> {
    // The sleep sits inside the span so the injected latency is
    // attributed to the eval phase, exactly like a genuinely slow eval.
    let slow = || {
        if slow_eval_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(slow_eval_us));
        }
    };
    let mut input = BufReader::new(input);
    let mut output = BufWriter::new(output);
    let mut nodes: BTreeMap<Node, DeltaNode> = BTreeMap::new();
    // Each node's last full chunk — its resident shard, evaluated in place
    // by `EvalResident` requests without re-shipping any facts.
    let mut resident: BTreeMap<Node, Instance> = BTreeMap::new();
    let mut evals_seen = 0u64;
    let mut note_eval = || -> Result<(), String> {
        evals_seen += 1;
        match fail_after {
            Some(limit) if evals_seen > limit => Err(format!(
                "injected fault: worker dying on eval job {evals_seen}"
            )),
            _ => Ok(()),
        }
    };
    loop {
        match read_frame::<Message>(&mut input) {
            Ok(None) | Ok(Some(Message::Shutdown)) => return Ok(()),
            Ok(Some(Message::EvalChunk {
                query,
                options,
                batch,
                trace,
            })) => {
                note_eval()?;
                trace.adopt();
                let start = Instant::now();
                let _span = obs::span_under("worker_eval_chunk", trace.parent_span, || {
                    vec![
                        ("node".to_string(), batch.node.to_string()),
                        ("round".to_string(), batch.round.to_string()),
                        ("facts".to_string(), batch.chunk.len().to_string()),
                    ]
                });
                slow();
                let local = cq::evaluate_with(&query, &batch.chunk, options);
                drop(_span);
                let eval_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                let reply = Message::ChunkResult {
                    batch: ChunkBatch {
                        round: batch.round,
                        node: batch.node,
                        chunk: local,
                    },
                    eval_us,
                };
                // The chunk becomes the node's resident shard (a full chunk
                // supersedes any incremental state).
                nodes.remove(&batch.node);
                resident.insert(batch.node, batch.chunk);
                write_frame(&mut output, &reply).map_err(|e| e.to_string())?;
            }
            Ok(Some(Message::EvalDelta {
                query,
                options,
                batch,
                trace,
            })) => {
                note_eval()?;
                trace.adopt();
                if batch.round == 0 {
                    nodes.insert(batch.node, DeltaNode::new());
                    resident.remove(&batch.node);
                }
                let state = nodes.entry(batch.node).or_default();
                let start = Instant::now();
                let _span = obs::span_under("worker_eval_delta", trace.parent_span, || {
                    vec![
                        ("node".to_string(), batch.node.to_string()),
                        ("round".to_string(), batch.round.to_string()),
                        ("delta_facts".to_string(), batch.delta.len().to_string()),
                    ]
                });
                slow();
                let fresh = state.step_with(&query, &batch.delta, options);
                drop(_span);
                let eval_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                let reply = Message::DeltaResult {
                    batch: DeltaBatch {
                        round: batch.round,
                        node: batch.node,
                        delta: fresh,
                    },
                    eval_us,
                };
                write_frame(&mut output, &reply).map_err(|e| e.to_string())?;
            }
            Ok(Some(Message::EvalResident {
                round,
                node,
                query,
                options,
                trace,
            })) => {
                note_eval()?;
                trace.adopt();
                let empty = Instance::new();
                let shard = nodes
                    .get(&node)
                    .map(|state| state.data().full())
                    .or_else(|| resident.get(&node))
                    .unwrap_or(&empty);
                let start = Instant::now();
                let _span = obs::span_under("worker_eval_resident", trace.parent_span, || {
                    vec![
                        ("node".to_string(), node.to_string()),
                        ("round".to_string(), round.to_string()),
                        ("facts".to_string(), shard.len().to_string()),
                    ]
                });
                slow();
                let local = cq::evaluate_with(&query, shard, options);
                drop(_span);
                let eval_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                let reply = Message::ChunkResult {
                    batch: ChunkBatch {
                        round,
                        node,
                        chunk: local,
                    },
                    eval_us,
                };
                write_frame(&mut output, &reply).map_err(|e| e.to_string())?;
            }
            Ok(Some(Message::Barrier { round })) => {
                // Flush this round's trace buffers to the coordinator
                // right before the ack — the driver absorbs `TraceFlush`
                // frames while waiting for the barrier.
                if obs::enabled() {
                    let events = obs::take_events();
                    if !events.is_empty() {
                        write_frame(&mut output, &Message::TraceFlush { events })
                            .map_err(|e| e.to_string())?;
                    }
                }
                write_frame(&mut output, &Message::BarrierAck { round })
                    .map_err(|e| e.to_string())?;
            }
            Ok(Some(other)) => {
                return Err(format!("unexpected {} message on a worker", other.kind()))
            }
            Err(e) => return Err(format!("bad frame on worker stdin: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;
    use crate::message::TraceContext;

    /// Drives `run_worker` entirely in memory (no subprocess): feed it a
    /// frame script, collect its reply frames.
    fn worker_script(messages: &[Message]) -> Result<Vec<Message>, String> {
        worker_script_with_fault(messages, None).0
    }

    /// Like [`worker_script`] but with fault injection, and always
    /// returning whatever replies made it out before a failure.
    fn worker_script_with_fault(
        messages: &[Message],
        fail_after: Option<u64>,
    ) -> (Result<Vec<Message>, String>, Vec<Message>) {
        let mut input = Vec::new();
        for m in messages {
            input.extend(encode_frame(m));
        }
        let mut output = Vec::new();
        let run = run_worker_with_fault(std::io::Cursor::new(input), &mut output, fail_after);
        let mut replies = Vec::new();
        let mut cursor = std::io::Cursor::new(output);
        while let Ok(Some(m)) = read_frame::<Message>(&mut cursor) {
            replies.push(m);
        }
        (run.map(|()| replies.clone()), replies)
    }

    #[test]
    fn worker_evaluates_chunks_and_acks_barriers() {
        let query = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
        let chunk = cq::parse_instance("R(a, b). R(b, c).").unwrap();
        let replies = worker_script(&[
            Message::EvalChunk {
                query: query.clone(),
                options: EvalOptions::default(),
                batch: ChunkBatch {
                    round: 0,
                    node: Node::numbered(0),
                    chunk: chunk.clone(),
                },
                trace: TraceContext::default(),
            },
            Message::Barrier { round: 0 },
            Message::Shutdown,
        ])
        .unwrap();
        assert_eq!(replies.len(), 2);
        match &replies[0] {
            Message::ChunkResult { batch, .. } => {
                assert_eq!(batch.node, Node::numbered(0));
                assert_eq!(batch.chunk, cq::evaluate(&query, &chunk));
            }
            other => panic!("expected a chunk-result, got {}", other.kind()),
        }
        assert_eq!(replies[1], Message::BarrierAck { round: 0 });
    }

    #[test]
    fn worker_accumulates_deltas_and_resets_on_round_zero() {
        let query = ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap();
        let node = Node::numbered(0);
        let delta = |round, text: &str| Message::EvalDelta {
            query: query.clone(),
            options: EvalOptions::default(),
            batch: DeltaBatch {
                round,
                node,
                delta: cq::parse_instance(text).unwrap(),
            },
            trace: TraceContext::default(),
        };
        let replies = worker_script(&[
            // Run 1: the join closes in round 1 against round-0 state.
            delta(0, "R(a, b)."),
            delta(1, "S(b, c)."),
            // Run 2 (round 0 again): state must reset, so the same S fact
            // alone derives nothing.
            delta(0, "S(b, c)."),
            Message::Shutdown,
        ])
        .unwrap();
        let outputs: Vec<&Instance> = replies
            .iter()
            .map(|m| match m {
                Message::DeltaResult { batch, .. } => &batch.delta,
                other => panic!("expected a delta-result, got {}", other.kind()),
            })
            .collect();
        assert!(outputs[0].is_empty(), "R alone joins nothing");
        assert_eq!(outputs[1], &cq::parse_instance("T(a, c).").unwrap());
        assert!(
            outputs[2].is_empty(),
            "round 0 must reset the node's state, got {}",
            outputs[2]
        );
    }

    #[test]
    fn worker_evaluates_resident_shards_without_receiving_facts() {
        let loop_q = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z), R(y, y).").unwrap();
        let path_q = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
        let node = Node::numbered(0);
        let chunk = cq::parse_instance("R(a, a). R(a, b).").unwrap();
        let replies = worker_script(&[
            Message::EvalChunk {
                query: loop_q,
                options: EvalOptions::default(),
                batch: ChunkBatch {
                    round: 0,
                    node,
                    chunk: chunk.clone(),
                },
                trace: TraceContext::default(),
            },
            // A different query over the shard the chunk left behind —
            // no facts travel with this request.
            Message::EvalResident {
                round: 0,
                node,
                query: path_q.clone(),
                options: EvalOptions::default(),
                trace: TraceContext::default(),
            },
            // A node never shipped anything holds the empty shard.
            Message::EvalResident {
                round: 0,
                node: Node::numbered(9),
                query: path_q.clone(),
                options: EvalOptions::default(),
                trace: TraceContext::default(),
            },
            Message::Shutdown,
        ])
        .unwrap();
        assert_eq!(replies.len(), 3);
        match &replies[1] {
            Message::ChunkResult { batch, .. } => {
                assert_eq!(batch.node, node);
                assert_eq!(batch.chunk, cq::evaluate(&path_q, &chunk));
            }
            other => panic!("expected a chunk-result, got {}", other.kind()),
        }
        match &replies[2] {
            Message::ChunkResult { batch, .. } => {
                assert_eq!(batch.node, Node::numbered(9));
                assert!(batch.chunk.is_empty(), "unknown node must answer empty");
            }
            other => panic!("expected a chunk-result, got {}", other.kind()),
        }
    }

    #[test]
    fn resident_requests_prefer_accumulated_delta_state() {
        let query = ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap();
        let node = Node::numbered(0);
        let delta = |round, text: &str| Message::EvalDelta {
            query: query.clone(),
            options: EvalOptions::default(),
            batch: DeltaBatch {
                round,
                node,
                delta: cq::parse_instance(text).unwrap(),
            },
            trace: TraceContext::default(),
        };
        let replies = worker_script(&[
            delta(0, "R(a, b)."),
            delta(1, "S(b, c)."),
            Message::EvalResident {
                round: 0,
                node,
                query: query.clone(),
                options: EvalOptions::default(),
                trace: TraceContext::default(),
            },
            Message::Shutdown,
        ])
        .unwrap();
        match replies.last().unwrap() {
            Message::ChunkResult { batch, .. } => {
                // The shard is the accumulated R+S state, so the join closes.
                assert_eq!(batch.chunk, cq::parse_instance("T(a, c).").unwrap());
            }
            other => panic!("expected a chunk-result, got {}", other.kind()),
        }
    }

    #[test]
    fn worker_honors_shipped_eval_options() {
        // A chunk evaluated with multiway vs binary strategies must agree —
        // and both must actually run (regression for the wire transports
        // silently dropping eval options).
        let query = ConjunctiveQuery::parse("T(x, y, z) :- R(x, y), S(y, z), U(z, x).").unwrap();
        let chunk = cq::parse_instance("R(a, b). S(b, c). U(c, a). R(b, c).").unwrap();
        let mut outputs = Vec::new();
        for strategy in [cq::JoinStrategy::Binary, cq::JoinStrategy::Multiway] {
            let replies = worker_script(&[
                Message::EvalChunk {
                    query: query.clone(),
                    options: EvalOptions {
                        join_strategy: strategy,
                        ..EvalOptions::default()
                    },
                    batch: ChunkBatch {
                        round: 0,
                        node: Node::numbered(0),
                        chunk: chunk.clone(),
                    },
                    trace: TraceContext::default(),
                },
                Message::Shutdown,
            ])
            .unwrap();
            match &replies[0] {
                Message::ChunkResult { batch, .. } => outputs.push(batch.chunk.clone()),
                other => panic!("expected a chunk-result, got {}", other.kind()),
            }
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], cq::evaluate(&query, &chunk));
    }

    #[test]
    fn worker_exits_cleanly_on_eof() {
        assert_eq!(worker_script(&[]), Ok(vec![]));
    }

    #[test]
    fn worker_rejects_garbage_and_misdirected_messages() {
        let mut output = Vec::new();
        let err =
            run_worker(std::io::Cursor::new(b"not a frame".to_vec()), &mut output).unwrap_err();
        assert!(err.contains("bad frame"), "{err}");

        let err = worker_script(&[Message::BarrierAck { round: 0 }]).unwrap_err();
        assert!(err.contains("unexpected"), "{err}");
    }

    #[test]
    fn fault_injection_dies_on_the_exact_eval_job_without_replying() {
        let query = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
        let eval = |node| Message::EvalChunk {
            query: query.clone(),
            options: EvalOptions::default(),
            batch: ChunkBatch {
                round: 0,
                node: Node::numbered(node),
                chunk: cq::parse_instance("R(a, b). R(b, c).").unwrap(),
            },
            trace: TraceContext::default(),
        };
        // Barriers must not count toward the limit: with fail-after 2 the
        // worker answers two evals (and the barrier between them), then
        // dies on the third eval without replying to it.
        let script = [
            eval(0),
            Message::Barrier { round: 0 },
            eval(1),
            eval(2),
            Message::Shutdown,
        ];
        let (run, replies) = worker_script_with_fault(&script, Some(2));
        let err = run.unwrap_err();
        assert!(err.contains("injected fault"), "{err}");
        assert_eq!(replies.len(), 3, "two results + one barrier-ack");
        assert!(matches!(replies[0], Message::ChunkResult { .. }));
        assert_eq!(replies[1], Message::BarrierAck { round: 0 });
        assert!(matches!(replies[2], Message::ChunkResult { .. }));

        // Without the fault flag the same script completes.
        let (run, _) = worker_script_with_fault(&script, None);
        assert_eq!(run.unwrap().len(), 4);
    }
}
