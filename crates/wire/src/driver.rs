//! The shared pipelined driver behind both wire transports.
//!
//! [`PipelinedCore`] owns everything the process- and socket-backed
//! transports have in common: the node→worker assignment map (dealt
//! round-robin on first sight from a **persistent** cursor, so nodes
//! introduced in later rounds keep spreading across the whole pool), the
//! per-worker job queues, and the barrier driver that keeps up to
//! `window` chunk/delta jobs in flight per worker:
//!
//! ```text
//!               writer thread                     reader (barrier thread)
//!   jobs ──▶ gate.acquire ──▶ frame ──▶ pipe ──▶ reply₀, reply₁, …  ──▶ gate.release
//!                 ▲                                (in job order)            │
//!                 └────────────── bounded window (backpressure) ◀───────────┘
//! ```
//!
//! The writer streams frames ahead of the replies instead of the old
//! write-one-read-one lock step; the window bounds how far ahead it may
//! run (window 1 reproduces lock step exactly). Replies arrive in job
//! order because every worker processes its stream sequentially, so the
//! reader can attribute them without sequence numbers. Both request and
//! reply payload frames are counted toward `bytes_shipped` — the honest
//! bidirectional communication volume (round-control frames are O(1) per
//! round and excluded).
//!
//! **Fault tolerance.** When a worker dies mid-round (broken pipe, closed
//! socket, crash), the driver marks it dead, reaps its process, and
//! requeues the jobs the worker never answered onto the survivors via the
//! assignment map. Full chunks are stateless and requeue as-is; a delta
//! job's per-node state died with the worker, so the coordinator keeps a
//! ledger of every delta it shipped (`shipped_state`) and converts the
//! requeued job into a round-0 **state rebuild** carrying the node's full
//! accumulated input. The rebuilt node re-derives outputs it had already
//! shipped — harmless for the fixpoint (the engine unions results and
//! deduplicates deltas) — and later rounds go back to shipping plain
//! deltas. With fault tolerance off, the first worker failure surfaces as
//! the round's `TransportError`.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::Child;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use cq::{ConjunctiveQuery, EvalOptions, Instance};
use distribution::{Node, NodeResult, TransportError};
use obs::TraceEvent;

use crate::frame::{encode_frame, read_frame_counted, write_frame};
use crate::message::{ChunkBatch, DeltaBatch, EvalChunkRef, EvalDeltaRef, Message, TraceContext};

/// Default number of jobs the writer may run ahead of the replies.
pub(crate) const DEFAULT_WINDOW: usize = 8;

/// Default bound on how long `Drop` waits for a worker to exit after
/// `Shutdown` before killing it.
pub(crate) const DEFAULT_SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// How many bytes of a worker's stderr the coordinator keeps (the tail —
/// the last lines are the ones that explain a crash).
const STDERR_TAIL_LIMIT: usize = 8 * 1024;

/// How long [`StderrTail::tail`] waits for the reader thread to hit EOF
/// before settling for whatever has arrived so far. A dead worker's
/// stderr pipe closes almost immediately after its stdout does, so this
/// bound only matters for protocol errors from a still-live worker.
const STDERR_TAIL_WAIT: Duration = Duration::from_millis(500);

struct StderrTailInner {
    buf: Mutex<String>,
    /// Set once the reader thread sees EOF (worker exited).
    done: std::sync::atomic::AtomicBool,
}

/// The bounded tail of one spawned worker's stderr stream, filled by a
/// detached reader thread. Without this, a worker that panics before its
/// first reply takes its diagnostics to the grave: `spawn` pipes stderr
/// into the coordinator, and nobody used to read it.
#[derive(Clone)]
pub(crate) struct StderrTail {
    inner: std::sync::Arc<StderrTailInner>,
}

impl StderrTail {
    /// Spawns a detached thread that drains `stream` into a bounded
    /// buffer until EOF.
    pub(crate) fn capture(mut stream: impl Read + Send + 'static) -> StderrTail {
        let inner = std::sync::Arc::new(StderrTailInner {
            buf: Mutex::new(String::new()),
            done: std::sync::atomic::AtomicBool::new(false),
        });
        let shared = inner.clone();
        std::thread::spawn(move || {
            let mut chunk = [0u8; 4096];
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        let mut buf = shared.buf.lock().expect("stderr tail poisoned");
                        buf.push_str(&String::from_utf8_lossy(&chunk[..n]));
                        if buf.len() > STDERR_TAIL_LIMIT {
                            let cut = buf.len() - STDERR_TAIL_LIMIT;
                            let cut = (cut..buf.len())
                                .find(|&i| buf.is_char_boundary(i))
                                .unwrap_or(buf.len());
                            buf.drain(..cut);
                        }
                    }
                }
            }
            shared
                .done
                .store(true, std::sync::atomic::Ordering::Release);
        });
        StderrTail { inner }
    }

    /// The captured tail, waiting briefly for the stream to close so a
    /// crashing worker's final lines are included.
    fn tail(&self) -> String {
        let deadline = Instant::now() + STDERR_TAIL_WAIT;
        while !self.inner.done.load(std::sync::atomic::Ordering::Acquire)
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.inner
            .buf
            .lock()
            .expect("stderr tail poisoned")
            .trim()
            .to_string()
    }
}

/// One worker's two stream halves. For a subprocess these are its stdin
/// and stdout pipes; for a socket worker, the two clones of the TCP
/// stream.
pub(crate) struct Endpoint {
    writer: BufWriter<Box<dyn Write + Send>>,
    reader: BufReader<Box<dyn Read + Send>>,
}

impl Endpoint {
    /// Wraps a writer/reader pair in the buffered halves the driver uses.
    pub(crate) fn new(
        writer: impl Write + Send + 'static,
        reader: impl Read + Send + 'static,
    ) -> Endpoint {
        Endpoint {
            writer: BufWriter::new(Box::new(writer)),
            reader: BufReader::new(Box::new(reader)),
        }
    }

    /// Best-effort clean-shutdown frame (used on drop).
    fn send_shutdown(&mut self) {
        let _ = write_frame(&mut self.writer, &Message::Shutdown);
    }
}

/// One unit of work queued for a worker this round: a full chunk (classic
/// rounds), a delta (incremental rounds), or a resident-shard evaluation
/// (reshuffle-elided rounds, which ship no input facts at all).
#[derive(Clone)]
pub(crate) enum Job {
    Chunk(ChunkBatch),
    Delta(DeltaBatch),
    Resident { round: u64, node: Node },
}

impl Job {
    fn node(&self) -> Node {
        match self {
            Job::Chunk(batch) => batch.node,
            Job::Delta(batch) => batch.node,
            Job::Resident { node, .. } => *node,
        }
    }

    /// The round stamped on the job itself — a requeued state rebuild
    /// carries round 0 even when the transport is mid-run, so replies are
    /// validated against this, not the transport's current round.
    fn round(&self) -> u64 {
        match self {
            Job::Chunk(batch) => batch.round,
            Job::Delta(batch) => batch.round,
            Job::Resident { round, .. } => *round,
        }
    }

    fn encode(
        &self,
        query: &ConjunctiveQuery,
        options: EvalOptions,
        trace: TraceContext,
    ) -> Vec<u8> {
        match self {
            Job::Chunk(batch) => encode_frame(&EvalChunkRef {
                query,
                options,
                batch,
                trace,
            }),
            Job::Delta(batch) => encode_frame(&EvalDeltaRef {
                query,
                options,
                batch,
                trace,
            }),
            Job::Resident { round, node } => encode_frame(&Message::EvalResident {
                round: *round,
                node: *node,
                query: query.clone(),
                options,
                trace,
            }),
        }
    }
}

/// The bounded in-flight window shared between one worker's writer thread
/// and the reply reader: the writer blocks in [`WindowGate::acquire`]
/// while `window` jobs are unanswered, the reader releases a slot per
/// reply, and a reader-side failure aborts the writer out of its wait.
struct WindowGate {
    /// `(in_flight, aborted)`.
    state: Mutex<(usize, bool)>,
    cv: Condvar,
}

impl WindowGate {
    fn new() -> WindowGate {
        WindowGate {
            state: Mutex::new((0, false)),
            cv: Condvar::new(),
        }
    }

    /// Blocks until fewer than `window` jobs are in flight. Returns
    /// `false` when the round was aborted instead.
    fn acquire(&self, window: usize) -> bool {
        let mut state = self.state.lock().expect("window gate poisoned");
        while state.0 >= window && !state.1 {
            state = self.cv.wait(state).expect("window gate poisoned");
        }
        if state.1 {
            return false;
        }
        state.0 += 1;
        true
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("window gate poisoned");
        state.0 = state.0.saturating_sub(1);
        self.cv.notify_all();
    }

    fn abort(&self) {
        self.state.lock().expect("window gate poisoned").1 = true;
        self.cv.notify_all();
    }
}

/// The per-worker outcome of one pipelined drive.
pub(crate) struct DriveReport {
    /// Results of the jobs the worker answered, in job order.
    results: Vec<(Node, NodeResult)>,
    /// Request + reply payload bytes that actually crossed the boundary.
    bytes: u64,
    /// The jobs the worker never answered (empty unless `error` is set).
    failed: Vec<Job>,
    /// The failure that ended the drive, if any.
    error: Option<TransportError>,
    /// Trace events the worker flushed during the drive (empty when
    /// tracing is off — untraced workers never send `TraceFlush`).
    events: Vec<TraceEvent>,
}

/// Decodes one reply frame and validates it against the job it answers,
/// absorbing any `TraceFlush` frames the worker interleaved (their events
/// go into `events`). Returns the node's result plus the frames' total
/// wire length.
fn read_reply(
    reader: &mut BufReader<Box<dyn Read + Send>>,
    job: &Job,
    events: &mut Vec<TraceEvent>,
) -> Result<(Node, NodeResult, u64), TransportError> {
    let node = job.node();
    let mut total_bytes = 0u64;
    let (reply, reply_bytes) = loop {
        match read_frame_counted::<Message>(reader) {
            Ok(Some((Message::TraceFlush { events: flushed }, bytes))) => {
                total_bytes += bytes;
                events.extend(flushed);
            }
            Ok(Some(reply)) => break reply,
            Ok(None) => {
                return Err(TransportError::Io(
                    "worker closed its connection mid-round".to_string(),
                ))
            }
            Err(e) => return Err(TransportError::Protocol(e.to_string())),
        }
    };
    let reply_bytes = total_bytes + reply_bytes;
    let (answered_round, answered_node, output, eval_us) = match (job, reply) {
        (Job::Chunk(_) | Job::Resident { .. }, Message::ChunkResult { batch, eval_us }) => {
            (batch.round, batch.node, batch.chunk, eval_us)
        }
        (Job::Delta(_), Message::DeltaResult { batch, eval_us }) => {
            (batch.round, batch.node, batch.delta, eval_us)
        }
        (Job::Chunk(_) | Job::Resident { .. }, other) => {
            return Err(TransportError::Protocol(format!(
                "expected a chunk-result, worker sent {}",
                other.kind()
            )))
        }
        (Job::Delta(_), other) => {
            return Err(TransportError::Protocol(format!(
                "expected a delta-result, worker sent {}",
                other.kind()
            )))
        }
    };
    if answered_round != job.round() || answered_node != node {
        return Err(TransportError::Protocol(format!(
            "worker answered round {answered_round} node {answered_node} \
             to a round {} job for {node}",
            job.round()
        )));
    }
    Ok((
        node,
        NodeResult {
            output,
            eval_time: Duration::from_micros(eval_us),
        },
        reply_bytes,
    ))
}

/// Histogram handles [`drive`] records into while streaming a round:
/// how long the writer blocked on the pipeline window, and how large the
/// request frames were. Cloned from the core's registry per barrier (the
/// handles share the registry's storage), so every worker thread feeds
/// the same two histograms.
#[derive(Clone)]
pub(crate) struct DriveMetrics {
    pub(crate) window_wait_us: obs::Histogram,
    pub(crate) frame_bytes: obs::Histogram,
}

/// Drives one worker's queue with up to `window` jobs in flight: a scoped
/// writer thread streams request frames under the gate's backpressure
/// (then closes the round with `Barrier`), while the calling thread reads
/// the replies in job order and releases gate slots. Never deadlocks: the
/// reader drains the reply pipe concurrently, so the writer cannot wedge
/// on a full buffer, and a dead worker surfaces as a write error or a
/// read-side EOF, never a hang.
#[allow(clippy::too_many_arguments)] // one call site, in barrier()
pub(crate) fn drive(
    endpoint: &mut Endpoint,
    query: &ConjunctiveQuery,
    options: EvalOptions,
    barrier_round: u64,
    jobs: &[Job],
    window: usize,
    trace: TraceContext,
    metrics: &DriveMetrics,
) -> DriveReport {
    let window = window.max(1);
    let gate = WindowGate::new();
    let Endpoint { writer, reader } = endpoint;

    let (results, bytes, error, events) = std::thread::scope(|scope| {
        let gate = &gate;
        let writer_handle = scope.spawn(move || -> (u64, Option<TransportError>) {
            let mut sent = 0u64;
            for job in jobs {
                let wait_started = Instant::now();
                let acquired = {
                    let _wait = obs::span!("window_wait", node = job.node());
                    gate.acquire(window)
                };
                metrics
                    .window_wait_us
                    .record(u64::try_from(wait_started.elapsed().as_micros()).unwrap_or(u64::MAX));
                if !acquired {
                    // The reader failed and aborted the round; stop
                    // writing so the thread can be joined.
                    return (sent, None);
                }
                let frame = job.encode(query, options, trace);
                metrics.frame_bytes.record(frame.len() as u64);
                sent += frame.len() as u64;
                if let Err(e) = writer.write_all(&frame).and_then(|()| writer.flush()) {
                    return (
                        sent,
                        Some(TransportError::Io(format!(
                            "sending work for {}: {e}",
                            job.node()
                        ))),
                    );
                }
            }
            match write_frame(
                writer,
                &Message::Barrier {
                    round: barrier_round,
                },
            ) {
                Ok(()) => (sent, None),
                Err(e) => (
                    sent,
                    Some(TransportError::Io(format!("sending barrier: {e}"))),
                ),
            }
        });

        let mut results = Vec::with_capacity(jobs.len());
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut reply_bytes = 0u64;
        let mut error: Option<TransportError> = None;
        for job in jobs {
            match read_reply(reader, job, &mut events) {
                Ok((node, result, bytes)) => {
                    reply_bytes += bytes;
                    results.push((node, result));
                    gate.release();
                }
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        if error.is_none() {
            // Workers flush their trace buffers right before acking the
            // barrier; absorb those frames here.
            error = loop {
                match read_frame_counted::<Message>(reader) {
                    Ok(Some((Message::TraceFlush { events: flushed }, bytes))) => {
                        reply_bytes += bytes;
                        events.extend(flushed);
                    }
                    Ok(Some((Message::BarrierAck { round }, _))) if round == barrier_round => {
                        break None
                    }
                    Ok(Some((other, _))) => {
                        break Some(TransportError::Protocol(format!(
                            "expected barrier-ack for round {barrier_round}, worker sent {}",
                            other.kind()
                        )))
                    }
                    Ok(None) => {
                        break Some(TransportError::Io(
                            "worker closed its connection at the barrier".to_string(),
                        ))
                    }
                    Err(e) => break Some(TransportError::Protocol(e.to_string())),
                }
            };
        }
        if error.is_some() {
            gate.abort();
        }
        let (request_bytes, write_error) =
            writer_handle.join().expect("worker writer thread panicked");
        if error.is_none() {
            error = write_error;
        }
        (results, request_bytes + reply_bytes, error, events)
    });

    let failed = if error.is_some() {
        jobs[results.len()..].to_vec()
    } else {
        Vec::new()
    };
    DriveReport {
        results,
        bytes,
        failed,
        error,
        events,
    }
}

/// The full transport state shared by `ProcessTransport` and
/// `SocketTransport`: worker endpoints (with their child processes where
/// the transport spawned them), the persistent node→worker assignment,
/// the per-round job queues, and the fault-tolerance ledger. The wrappers
/// delegate every [`distribution::Transport`] method here.
pub(crate) struct PipelinedCore {
    /// One slot per worker; `None` marks a worker that died.
    endpoints: Vec<Option<Endpoint>>,
    /// Child processes for spawned workers (`None` for external workers
    /// that connected on their own, and for reaped dead workers).
    children: Vec<Option<Child>>,
    query: Option<ConjunctiveQuery>,
    options: EvalOptions,
    round: u64,
    /// Per-worker job queues for the current round.
    jobs: Vec<Vec<Job>>,
    /// Stable node→worker assignment (dealt round-robin on first sight):
    /// incremental rounds keep per-node state inside the worker, so a node
    /// must keep talking to the same worker until that worker dies.
    worker_for: BTreeMap<Node, usize>,
    /// Persistent dealing cursor — intentionally **not** reset per round,
    /// so nodes first seen in later rounds keep spreading across the pool
    /// instead of piling onto worker 0.
    next_worker: usize,
    results: BTreeMap<Node, NodeResult>,
    /// Request + reply payload bytes since the last `take_bytes_shipped`.
    bytes_shipped: u64,
    window: usize,
    fault_tolerance: bool,
    /// Every node's shipped state this run (fault tolerance only): the
    /// accumulated deltas of an incremental run, or the last full chunk of
    /// a classic run — what to re-ship when the node's worker dies, and
    /// what a requeued resident job must fall back to.
    shipped_state: BTreeMap<Node, Instance>,
    /// Nodes whose worker died after they were shipped state; their next
    /// delta becomes a round-0 rebuild on the new worker.
    needs_rebuild: BTreeSet<Node>,
    shutdown_grace: Duration,
    /// Trace context captured at `begin_round` and stamped on every eval
    /// frame, so worker spans parent under the coordinator's round span.
    trace: TraceContext,
    /// Unified metrics for the driver: `driver_requeues`, `worker_deaths`
    /// and `state_rebuilds` accumulate here over the transport's lifetime.
    registry: std::sync::Arc<obs::Registry>,
    /// Captured stderr tails for spawned workers (`None` for external
    /// socket workers); appended to the error when a worker dies.
    stderr_tails: Vec<Option<StderrTail>>,
}

impl PipelinedCore {
    pub(crate) fn new(endpoints: Vec<Endpoint>, children: Vec<Option<Child>>) -> PipelinedCore {
        let count = endpoints.len();
        debug_assert_eq!(count, children.len());
        PipelinedCore {
            endpoints: endpoints.into_iter().map(Some).collect(),
            children,
            query: None,
            options: EvalOptions::default(),
            round: 0,
            jobs: vec![Vec::new(); count],
            worker_for: BTreeMap::new(),
            next_worker: 0,
            results: BTreeMap::new(),
            bytes_shipped: 0,
            window: DEFAULT_WINDOW,
            fault_tolerance: true,
            shipped_state: BTreeMap::new(),
            needs_rebuild: BTreeSet::new(),
            shutdown_grace: DEFAULT_SHUTDOWN_GRACE,
            trace: TraceContext::default(),
            registry: std::sync::Arc::new(obs::Registry::new()),
            stderr_tails: vec![None; count],
        }
    }

    /// Installs the captured stderr tails for spawned workers (index-
    /// aligned with the endpoints; `None` for external workers).
    pub(crate) fn set_stderr_tails(&mut self, tails: Vec<Option<StderrTail>>) {
        debug_assert_eq!(tails.len(), self.endpoints.len());
        self.stderr_tails = tails;
    }

    /// The driver's metrics registry (requeues, worker deaths, state
    /// rebuilds).
    pub(crate) fn registry(&self) -> std::sync::Arc<obs::Registry> {
        self.registry.clone()
    }

    pub(crate) fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    pub(crate) fn set_fault_tolerance(&mut self, enabled: bool) {
        self.fault_tolerance = enabled;
        if !enabled {
            self.shipped_state.clear();
            self.needs_rebuild.clear();
        }
    }

    pub(crate) fn set_shutdown_grace(&mut self, grace: Duration) {
        self.shutdown_grace = grace;
    }

    pub(crate) fn worker_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Workers still alive (endpoints not torn down by a failure).
    pub(crate) fn alive_workers(&self) -> usize {
        self.endpoints.iter().filter(|e| e.is_some()).count()
    }

    /// The worker a node is currently assigned to, if any (diagnostics).
    #[cfg(test)]
    pub(crate) fn assignment_of(&self, node: Node) -> Option<usize> {
        self.worker_for.get(&node).copied()
    }

    /// Queues `job` on the worker that owns its node, assigning a live
    /// worker round-robin from the persistent cursor on first sight.
    fn enqueue(&mut self, job: Job) -> Result<(), TransportError> {
        let node = job.node();
        let worker = match self.worker_for.get(&node) {
            Some(&w) if self.endpoints[w].is_some() => w,
            _ => {
                let w = self.next_live_worker()?;
                self.worker_for.insert(node, w);
                w
            }
        };
        self.jobs[worker].push(job);
        Ok(())
    }

    fn next_live_worker(&mut self) -> Result<usize, TransportError> {
        let count = self.endpoints.len();
        for _ in 0..count {
            let w = self.next_worker;
            self.next_worker = (self.next_worker + 1) % count;
            if self.endpoints[w].is_some() {
                return Ok(w);
            }
        }
        Err(TransportError::Io(
            "no live workers left in the pool".to_string(),
        ))
    }

    /// Appends the tail of a spawned worker's captured stderr to the
    /// error that ended its drive, so a panic message or abort reason is
    /// not silently lost with the process.
    fn stderr_annotated(&self, worker: usize, error: TransportError) -> TransportError {
        let tail = match self.stderr_tails.get(worker).and_then(|t| t.as_ref()) {
            Some(tail) => tail.tail(),
            None => String::new(),
        };
        if tail.is_empty() {
            return error;
        }
        match error {
            TransportError::Io(msg) => TransportError::Io(format!("{msg}; worker stderr: {tail}")),
            TransportError::Protocol(msg) => {
                TransportError::Protocol(format!("{msg}; worker stderr: {tail}"))
            }
            other => other,
        }
    }

    /// Tears down a dead worker: closes its endpoint, reaps its process,
    /// and orphans its nodes so they get reassigned (and, for stateful
    /// delta nodes, rebuilt) on their next job.
    fn mark_dead(&mut self, worker: usize) {
        self.endpoints[worker] = None;
        if let Some(mut child) = self.children[worker].take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        let orphaned: Vec<Node> = self
            .worker_for
            .iter()
            .filter(|&(_, &w)| w == worker)
            .map(|(&node, _)| node)
            .collect();
        for node in orphaned {
            self.worker_for.remove(&node);
            self.needs_rebuild.insert(node);
        }
    }

    /// Converts a job that died with its worker into the job to requeue on
    /// a survivor: chunks are stateless and go as-is; a delta's per-node
    /// state is gone, so it becomes a round-0 rebuild carrying the node's
    /// full shipped state (which already includes this round's delta); a
    /// resident job's shard likewise died, so it becomes a full chunk
    /// carrying the ledger copy of that shard.
    fn requeued_job(&mut self, job: Job) -> Job {
        match job {
            Job::Chunk(batch) => Job::Chunk(batch),
            Job::Delta(batch) => {
                let node = batch.node;
                self.registry.counter("state_rebuilds").inc();
                obs::instant!("state_rebuild", node = node);
                self.needs_rebuild.remove(&node);
                let delta = self
                    .shipped_state
                    .get(&node)
                    .cloned()
                    .unwrap_or(batch.delta);
                Job::Delta(DeltaBatch {
                    round: 0,
                    node,
                    delta,
                })
            }
            Job::Resident { round, node } => {
                self.registry.counter("state_rebuilds").inc();
                obs::instant!("state_rebuild", node = node);
                self.needs_rebuild.remove(&node);
                let chunk = self.shipped_state.get(&node).cloned().unwrap_or_default();
                Job::Chunk(ChunkBatch { round, node, chunk })
            }
        }
    }

    pub(crate) fn begin_round(
        &mut self,
        round: usize,
        query: &ConjunctiveQuery,
        options: EvalOptions,
    ) -> Result<(), TransportError> {
        self.query = Some(query.clone());
        self.options = options;
        self.round = round as u64;
        // Capture the active trace (if any) once per round: every frame
        // this round ships the same context, and workers parent their
        // spans under whatever span the engine has open right now.
        self.trace = TraceContext::capture(obs::current_span());
        for queue in &mut self.jobs {
            queue.clear();
        }
        self.results.clear();
        Ok(())
    }

    pub(crate) fn send_chunk(&mut self, node: Node, chunk: Instance) -> Result<(), TransportError> {
        self.registry
            .histogram("chunk_facts")
            .record(chunk.len() as u64);
        if self.fault_tolerance {
            // A full chunk replaces whatever the node held before — keep
            // the ledger in step so resident jobs can be rebuilt from it.
            self.shipped_state.insert(node, chunk.clone());
            self.needs_rebuild.remove(&node);
        }
        self.enqueue(Job::Chunk(ChunkBatch {
            round: self.round,
            node,
            chunk,
        }))
    }

    pub(crate) fn send_resident(&mut self, node: Node) -> Result<(), TransportError> {
        let round = self.round;
        if self.fault_tolerance && self.needs_rebuild.remove(&node) {
            // The worker holding the node's shard died since it was
            // shipped: re-ship the ledger copy as a full chunk instead of
            // asking a fresh worker for state it does not have.
            let chunk = self.shipped_state.get(&node).cloned().unwrap_or_default();
            return self.enqueue(Job::Chunk(ChunkBatch { round, node, chunk }));
        }
        self.enqueue(Job::Resident { round, node })
    }

    pub(crate) fn send_delta(&mut self, node: Node, delta: Instance) -> Result<(), TransportError> {
        self.registry
            .histogram("chunk_facts")
            .record(delta.len() as u64);
        let round = self.round;
        if self.fault_tolerance {
            // Ledger first: the rebuild snapshot below must already
            // include this round's delta.
            if round == 0 {
                self.shipped_state.insert(node, delta.clone());
                self.needs_rebuild.remove(&node);
            } else {
                self.shipped_state
                    .entry(node)
                    .or_default()
                    .extend(delta.facts().cloned());
            }
        }
        let batch = if round > 0 && self.fault_tolerance && self.needs_rebuild.remove(&node) {
            // The node's worker died since it last got a delta: ship the
            // full accumulated state as a round-0 reset instead.
            let state = self
                .shipped_state
                .get(&node)
                .cloned()
                .unwrap_or_else(|| delta.clone());
            DeltaBatch {
                round: 0,
                node,
                delta: state,
            }
        } else {
            DeltaBatch { round, node, delta }
        };
        self.enqueue(Job::Delta(batch))
    }

    pub(crate) fn barrier(&mut self) -> Result<(), TransportError> {
        let query = self
            .query
            .clone()
            .ok_or_else(|| TransportError::Protocol("barrier before begin_round".to_string()))?;
        let options = self.options;
        let round = self.round;
        let window = self.window;
        let trace = self.trace;
        let metrics = DriveMetrics {
            window_wait_us: self.registry.histogram("window_wait_us"),
            frame_bytes: self.registry.histogram("frame_bytes"),
        };
        loop {
            let count = self.endpoints.len();
            let jobs = std::mem::replace(&mut self.jobs, vec![Vec::new(); count]);
            if jobs.iter().all(|queue| queue.is_empty()) {
                return Ok(());
            }
            // One scoped thread per worker with jobs; each drives its own
            // endpoint so the workers evaluate concurrently.
            let reports: Vec<(usize, DriveReport)> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .endpoints
                    .iter_mut()
                    .enumerate()
                    .zip(&jobs)
                    .filter(|((_, endpoint), queue)| endpoint.is_some() && !queue.is_empty())
                    .map(|((i, endpoint), queue)| {
                        let query = &query;
                        let metrics = &metrics;
                        let endpoint = endpoint.as_mut().expect("filtered on live endpoints");
                        scope.spawn(move || {
                            (
                                i,
                                drive(
                                    endpoint, query, options, round, queue, window, trace, metrics,
                                ),
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker driver thread panicked"))
                    .collect()
            });
            let mut requeue: Vec<Job> = Vec::new();
            // Jobs that landed on a worker that was already dead (cannot
            // happen through enqueue, but cheap to sweep defensively).
            for (i, queue) in jobs.into_iter().enumerate() {
                if self.endpoints[i].is_none() && !queue.is_empty() {
                    requeue.extend(queue);
                }
            }
            for (worker, report) in reports {
                self.bytes_shipped += report.bytes;
                self.results.extend(report.results);
                if !report.events.is_empty() {
                    // Worker events arrive with pid 0 (set at recording
                    // time by a process that does not know its index);
                    // stamp them with a stable per-worker pid so the
                    // merged timeline keeps the processes apart.
                    let pid = (worker + 1) as u32;
                    let mut events = report.events;
                    for event in &mut events {
                        if event.pid == 0 {
                            event.pid = pid;
                        }
                    }
                    obs::submit_events(events);
                }
                if let Some(error) = report.error {
                    let error = self.stderr_annotated(worker, error);
                    if !self.fault_tolerance {
                        return Err(error);
                    }
                    self.registry.counter("worker_deaths").inc();
                    obs::instant!("worker_dead", worker = worker, error = error);
                    self.mark_dead(worker);
                    requeue.extend(report.failed);
                }
            }
            if requeue.is_empty() {
                return Ok(());
            }
            if self.alive_workers() == 0 {
                return Err(TransportError::Io(format!(
                    "all {count} workers died; {} unanswered job(s) cannot be requeued",
                    requeue.len()
                )));
            }
            for job in requeue {
                self.registry.counter("driver_requeues").inc();
                obs::instant!("requeue", node = job.node());
                let job = self.requeued_job(job);
                self.enqueue(job)?;
            }
            // Loop: drive the requeued jobs on the survivors.
        }
    }

    pub(crate) fn recv(&mut self, node: Node) -> Result<NodeResult, TransportError> {
        self.results
            .remove(&node)
            .ok_or(TransportError::UnknownNode(node))
    }

    pub(crate) fn take_bytes_shipped(&mut self) -> u64 {
        std::mem::take(&mut self.bytes_shipped)
    }

    pub(crate) fn parallelism(&self) -> usize {
        self.alive_workers().max(1)
    }
}

impl Drop for PipelinedCore {
    fn drop(&mut self) {
        for endpoint in self.endpoints.iter_mut().flatten() {
            endpoint.send_shutdown();
        }
        // Closing the endpoints (pipes / sockets) is the second shutdown
        // signal: a worker blocked in a read sees EOF and exits.
        self.endpoints.clear();
        // Bounded reaping: a wedged worker that ignores both signals is
        // killed after the grace period instead of hanging the drop.
        let deadline = Instant::now() + self.shutdown_grace;
        for child in self.children.iter_mut().flatten() {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) => {
                        if Instant::now() >= deadline {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A core with `count` inert workers (writes vanish, reads see EOF) —
    /// enough to exercise assignment without subprocesses.
    fn inert_core(count: usize) -> PipelinedCore {
        let endpoints = (0..count)
            .map(|_| Endpoint::new(std::io::sink(), std::io::empty()))
            .collect();
        let children = (0..count).map(|_| None).collect();
        PipelinedCore::new(endpoints, children)
    }

    #[test]
    fn dealing_cursor_persists_across_rounds() {
        // Regression: `begin_round` used to reset the cursor to worker 0
        // every round, so nodes first seen in later rounds piled onto the
        // low-index workers. Two rounds introducing disjoint node sets
        // must spread across all three workers.
        let query = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
        let mut core = inert_core(3);

        core.begin_round(0, &query, EvalOptions::default()).unwrap();
        core.send_chunk(Node::numbered(0), Instance::new()).unwrap();
        core.send_chunk(Node::numbered(1), Instance::new()).unwrap();
        assert_eq!(core.assignment_of(Node::numbered(0)), Some(0));
        assert_eq!(core.assignment_of(Node::numbered(1)), Some(1));

        core.begin_round(1, &query, EvalOptions::default()).unwrap();
        core.send_chunk(Node::numbered(2), Instance::new()).unwrap();
        core.send_chunk(Node::numbered(3), Instance::new()).unwrap();
        assert_eq!(
            core.assignment_of(Node::numbered(2)),
            Some(2),
            "round 1's first new node must continue from the cursor, not worker 0"
        );
        assert_eq!(core.assignment_of(Node::numbered(3)), Some(0));

        let assigned: BTreeSet<usize> = (0..4)
            .filter_map(|i| core.assignment_of(Node::numbered(i)))
            .collect();
        assert_eq!(
            assigned,
            BTreeSet::from([0, 1, 2]),
            "disjoint node sets across two rounds must cover every worker"
        );
    }

    #[test]
    fn earlier_assignments_are_sticky() {
        let query = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
        let mut core = inert_core(2);
        core.begin_round(0, &query, EvalOptions::default()).unwrap();
        core.send_chunk(Node::numbered(0), Instance::new()).unwrap();
        core.begin_round(1, &query, EvalOptions::default()).unwrap();
        core.send_chunk(Node::numbered(0), Instance::new()).unwrap();
        core.send_chunk(Node::numbered(1), Instance::new()).unwrap();
        assert_eq!(core.assignment_of(Node::numbered(0)), Some(0));
        assert_eq!(
            core.assignment_of(Node::numbered(1)),
            Some(1),
            "a re-seen node must not advance the cursor"
        );
    }

    #[test]
    fn window_gate_blocks_at_capacity_and_aborts() {
        let gate = WindowGate::new();
        assert!(gate.acquire(2));
        assert!(gate.acquire(2));
        // A third acquire would block; abort from another thread unblocks.
        std::thread::scope(|scope| {
            let gate = &gate;
            let blocked = scope.spawn(move || gate.acquire(2));
            std::thread::sleep(Duration::from_millis(20));
            gate.abort();
            assert!(!blocked.join().unwrap(), "abort must unblock acquire");
        });
        // After abort, acquire always declines.
        gate.release();
        assert!(!gate.acquire(2));
    }
}
