//! The binary codec: varint primitives, the per-message symbol table and
//! the [`Encode`] / [`Decode`] traits with impls for every shippable type.
//!
//! ## Layout
//!
//! A codec *body* (the payload of one [frame](crate::frame)) is:
//!
//! ```text
//! body    := symtab payload
//! symtab  := varint(count) { varint(len) utf8-bytes }*
//! payload := type-specific, see the Encode impls
//! ```
//!
//! Every interned name in a message — relation names, data values,
//! variables, node names — is collected into the message's symbol table
//! while the payload is encoded, and the payload references it by varint
//! index. A chunk of ten thousand facts over relation `R` ships the string
//! `"R"` once, not ten thousand times, and repeated data values (the
//! common case under skew) ship as small integers.
//!
//! Varints are LEB128: 7 payload bits per byte, high bit = continuation.
//!
//! Decoding never panics: every length is bounds-checked against the
//! remaining input, symbol references are checked against the table, and
//! semantic invariants (e.g. query safety) are re-validated on decode.

use std::collections::HashMap;
use std::fmt;

use cq::{
    Atom, ConjunctiveQuery, EvalOptions, Fact, Instance, JoinOrdering, JoinStrategy, Symbol, Value,
    Variable,
};
use distribution::{Network, Node};

/// Errors raised while decoding wire data. Corrupted, truncated or
/// malicious input surfaces here; decoding never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    Truncated,
    /// A varint ran over 10 bytes (no u64 needs more).
    VarintOverflow,
    /// The payload referenced a symbol index outside the message's table.
    SymbolIndexOutOfRange {
        /// The out-of-range index.
        index: u64,
        /// Number of entries in the message's symbol table.
        table_len: usize,
    },
    /// A symbol table entry was not valid UTF-8.
    InvalidUtf8,
    /// An enum tag byte had no corresponding variant.
    UnknownTag {
        /// The type being decoded.
        context: &'static str,
        /// The unexpected tag byte.
        tag: u8,
    },
    /// Input remained after the value was fully decoded.
    TrailingBytes {
        /// Number of unread bytes.
        count: usize,
    },
    /// The bytes decoded structurally but violate a semantic invariant
    /// (e.g. an unsafe conjunctive query).
    Invalid(String),
    /// The frame header did not start with the `PCQW` magic.
    BadMagic([u8; 4]),
    /// The frame version is not one this build understands.
    UnsupportedVersion(u8),
    /// The frame declared a body longer than the sanity limit.
    FrameTooLarge {
        /// Declared body length.
        len: u64,
        /// The limit ([`crate::frame::MAX_BODY_LEN`]).
        limit: u64,
    },
    /// An I/O error while reading a frame from a stream.
    Io(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            DecodeError::SymbolIndexOutOfRange { index, table_len } => {
                write!(
                    f,
                    "symbol index {index} out of range (table has {table_len})"
                )
            }
            DecodeError::InvalidUtf8 => write!(f, "symbol table entry is not valid UTF-8"),
            DecodeError::UnknownTag { context, tag } => {
                write!(f, "unknown tag {tag} while decoding {context}")
            }
            DecodeError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after the value")
            }
            DecodeError::Invalid(detail) => write!(f, "decoded value is invalid: {detail}"),
            DecodeError::BadMagic(found) => {
                write!(f, "bad frame magic {found:?} (expected \"PCQW\")")
            }
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
            DecodeError::FrameTooLarge { len, limit } => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds the {limit}-byte limit"
                )
            }
            DecodeError::Io(detail) => write!(f, "I/O error: {detail}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends `value` to `out` as a LEB128 varint.
pub(crate) fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from the front of `input`, returning the value
/// and the number of bytes consumed.
pub(crate) fn read_varint(input: &[u8]) -> Result<(u64, usize), DecodeError> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate() {
        if i >= 10 {
            return Err(DecodeError::VarintOverflow);
        }
        let payload = u64::from(byte & 0x7f);
        value |= payload
            .checked_shl(7 * i as u32)
            .ok_or(DecodeError::VarintOverflow)?;
        if byte & 0x80 == 0 {
            // Overlong encodings (continuation past bit 63) are rejected by
            // the checked shift above; a 10th byte with payload > 1 is too.
            if i == 9 && byte > 1 {
                return Err(DecodeError::VarintOverflow);
            }
            return Ok((value, i + 1));
        }
    }
    Err(DecodeError::Truncated)
}

/// Builds one message body: collects symbols into the per-message table
/// while the payload is written, then [`Encoder::finish`] emits
/// `symtab ++ payload`.
#[derive(Default)]
pub struct Encoder {
    symbols: Vec<Symbol>,
    index: HashMap<Symbol, u64>,
    payload: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Writes a varint.
    pub fn u64(&mut self, value: u64) {
        write_varint(&mut self.payload, value);
    }

    /// Writes a `usize` as a varint.
    pub fn usize(&mut self, value: usize) {
        self.u64(value as u64);
    }

    /// Writes a raw byte (enum tags).
    pub fn byte(&mut self, value: u8) {
        self.payload.push(value);
    }

    /// Writes a bool as a byte.
    pub fn bool(&mut self, value: bool) {
        self.byte(u8::from(value));
    }

    /// Writes a symbol as its table index, interning it into the table on
    /// first occurrence.
    pub fn symbol(&mut self, symbol: Symbol) {
        let next = self.symbols.len() as u64;
        let index = *self.index.entry(symbol).or_insert_with(|| {
            self.symbols.push(symbol);
            next
        });
        self.u64(index);
    }

    /// Finishes the body: symbol table first, then the payload.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 16 * self.symbols.len() + 4);
        write_varint(&mut out, self.symbols.len() as u64);
        for symbol in &self.symbols {
            let bytes = symbol.as_str().as_bytes();
            write_varint(&mut out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Reads one message body produced by [`Encoder`]: the symbol table is
/// parsed (and re-interned) up front, then values are read from the
/// payload cursor.
pub struct Decoder<'a> {
    symbols: Vec<Symbol>,
    payload: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Parses the symbol table at the front of `body` and positions the
    /// cursor on the payload.
    pub fn new(body: &'a [u8]) -> Result<Decoder<'a>, DecodeError> {
        let mut rest = body;
        let (count, used) = read_varint(rest)?;
        rest = &rest[used..];
        // A symbol needs at least one length byte, so `count` can never
        // legitimately exceed the remaining input — reject early instead of
        // trusting a corrupted count with a huge allocation.
        if count > rest.len() as u64 {
            return Err(DecodeError::Truncated);
        }
        let mut symbols = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (len, used) = read_varint(rest)?;
            rest = &rest[used..];
            if len > rest.len() as u64 {
                return Err(DecodeError::Truncated);
            }
            let (name, tail) = rest.split_at(len as usize);
            let name = std::str::from_utf8(name).map_err(|_| DecodeError::InvalidUtf8)?;
            symbols.push(Symbol::new(name));
            rest = tail;
        }
        Ok(Decoder {
            symbols,
            payload: rest,
        })
    }

    /// Reads a varint.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let (value, used) = read_varint(self.payload)?;
        self.payload = &self.payload[used..];
        Ok(value)
    }

    /// Reads a varint as a `usize`.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::VarintOverflow)
    }

    /// Reads a raw byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let (&byte, rest) = self.payload.split_first().ok_or(DecodeError::Truncated)?;
        self.payload = rest;
        Ok(byte)
    }

    /// Reads a bool byte (`0` or `1`).
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::UnknownTag {
                context: "bool",
                tag,
            }),
        }
    }

    /// Reads a symbol-table reference.
    pub fn symbol(&mut self) -> Result<Symbol, DecodeError> {
        let index = self.u64()?;
        self.symbols
            .get(usize::try_from(index).unwrap_or(usize::MAX))
            .copied()
            .ok_or(DecodeError::SymbolIndexOutOfRange {
                index,
                table_len: self.symbols.len(),
            })
    }

    /// Number of unread payload bytes.
    pub fn remaining(&self) -> usize {
        self.payload.len()
    }

    /// Asserts the payload was fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.payload.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                count: self.payload.len(),
            })
        }
    }
}

/// A value that can be written to the binary wire format.
pub trait Encode {
    /// Appends `self` to the encoder's payload (interning symbols into the
    /// message's table as a side effect).
    fn encode(&self, enc: &mut Encoder);
}

/// A value that can be read back from the binary wire format.
pub trait Decode: Sized {
    /// Reads one value from the decoder's payload cursor.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;
}

impl Encode for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(*self);
    }
}

impl Decode for u64 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.u64()
    }
}

impl Encode for usize {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(*self);
    }
}

impl Decode for usize {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.usize()
    }
}

impl Encode for Symbol {
    fn encode(&self, enc: &mut Encoder) {
        enc.symbol(*self);
    }
}

impl Decode for Symbol {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.symbol()
    }
}

impl Encode for Value {
    fn encode(&self, enc: &mut Encoder) {
        enc.symbol(self.symbol());
    }
}

impl Decode for Value {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Value::new(dec.symbol()?.as_str()))
    }
}

impl Encode for Variable {
    fn encode(&self, enc: &mut Encoder) {
        enc.symbol(self.symbol());
    }
}

impl Decode for Variable {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Variable::new(dec.symbol()?.as_str()))
    }
}

impl Encode for Node {
    fn encode(&self, enc: &mut Encoder) {
        enc.symbol(Symbol::new(self.as_str()));
    }
}

impl Decode for Node {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Node::new(dec.symbol()?.as_str()))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.len());
        for item in self {
            item.encode(enc);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = dec.usize()?;
        // Each element consumes at least one payload byte, so a length
        // beyond the remaining input is corrupt — check before reserving.
        if len > dec.remaining() {
            return Err(DecodeError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.byte(0),
            Some(value) => {
                enc.byte(1);
                value.encode(enc);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            tag => Err(DecodeError::UnknownTag {
                context: "Option",
                tag,
            }),
        }
    }
}

impl Encode for Fact {
    fn encode(&self, enc: &mut Encoder) {
        enc.symbol(self.relation);
        self.values.encode(enc);
    }
}

impl Decode for Fact {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let relation = dec.symbol()?;
        let values = Vec::<Value>::decode(dec)?;
        Ok(Fact::new(relation, values))
    }
}

impl Encode for Atom {
    fn encode(&self, enc: &mut Encoder) {
        enc.symbol(self.relation);
        self.args.encode(enc);
    }
}

impl Decode for Atom {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let relation = dec.symbol()?;
        let args = Vec::<Variable>::decode(dec)?;
        Ok(Atom::new(relation, args))
    }
}

impl Encode for Instance {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.len());
        for fact in self.facts() {
            fact.encode(enc);
        }
    }
}

impl Decode for Instance {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let facts = Vec::<Fact>::decode(dec)?;
        Ok(Instance::from_facts(facts))
    }
}

impl Encode for ConjunctiveQuery {
    fn encode(&self, enc: &mut Encoder) {
        self.head().encode(enc);
        enc.usize(self.body().len());
        for atom in self.body() {
            atom.encode(enc);
        }
    }
}

impl Decode for ConjunctiveQuery {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let head = Atom::decode(dec)?;
        let body = Vec::<Atom>::decode(dec)?;
        // Re-validate the paper's invariants (safety, arity consistency,
        // head relation outside the body): bytes from an untrusted peer
        // must not bypass them.
        ConjunctiveQuery::new(head, body).map_err(|e| DecodeError::Invalid(e.to_string()))
    }
}

impl Encode for Network {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.len());
        for node in self.nodes() {
            node.encode(enc);
        }
    }
}

impl Decode for Network {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Network::new(Vec::<Node>::decode(dec)?))
    }
}

impl Encode for EvalOptions {
    fn encode(&self, enc: &mut Encoder) {
        enc.byte(match self.ordering {
            JoinOrdering::Naive => 0,
            JoinOrdering::CostAware => 1,
        });
        enc.bool(self.use_indexes);
        enc.byte(match self.join_strategy {
            JoinStrategy::Binary => 0,
            JoinStrategy::Multiway => 1,
            JoinStrategy::Auto => 2,
        });
        enc.u64(u64::from(self.adaptive_factor));
    }
}

impl Decode for EvalOptions {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let ordering = match dec.byte()? {
            0 => JoinOrdering::Naive,
            1 => JoinOrdering::CostAware,
            tag => {
                return Err(DecodeError::UnknownTag {
                    context: "JoinOrdering",
                    tag,
                })
            }
        };
        let use_indexes = dec.bool()?;
        let join_strategy = match dec.byte()? {
            0 => JoinStrategy::Binary,
            1 => JoinStrategy::Multiway,
            2 => JoinStrategy::Auto,
            tag => {
                return Err(DecodeError::UnknownTag {
                    context: "JoinStrategy",
                    tag,
                })
            }
        };
        let adaptive_factor = u32::try_from(dec.u64()?)
            .map_err(|_| DecodeError::Invalid("adaptive factor exceeds u32".to_string()))?;
        Ok(EvalOptions {
            ordering,
            use_indexes,
            join_strategy,
            adaptive_factor,
        })
    }
}

/// Encodes `value` as a bare codec body (symbol table + payload) without
/// the frame header; see [`crate::frame::encode_frame`] for framed bytes.
pub fn encode_body<T: Encode>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.finish()
}

/// Decodes one value from a bare codec body, requiring the payload to be
/// fully consumed.
pub fn decode_body<T: Decode>(body: &[u8]) -> Result<T, DecodeError> {
    let mut dec = Decoder::new(body)?;
    let value = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, used) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        assert_eq!(read_varint(&[]), Err(DecodeError::Truncated));
        assert_eq!(read_varint(&[0x80]), Err(DecodeError::Truncated));
        // 11 continuation bytes can encode nothing a u64 holds
        assert_eq!(read_varint(&[0x80; 11]), Err(DecodeError::VarintOverflow));
        // 10th byte carrying more than the top u64 bit is overlong
        let mut overlong = vec![0xff; 9];
        overlong.push(0x02);
        assert_eq!(read_varint(&overlong), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn symbol_table_deduplicates_repeated_names() {
        // A star: the relation name and the hub value recur in all 100
        // facts, so the per-message table must beat shipping every string
        // per occurrence (length byte + bytes, the naive encoding).
        let facts: Vec<Fact> = (0..100)
            .map(|i| Fact::from_names("Edge", &["hub", &format!("spoke{i}")]))
            .collect();
        let instance = Instance::from_facts(facts);
        assert_eq!(instance.len(), 100);
        let body = encode_body(&instance);
        let naive: usize = instance
            .facts()
            .map(|f| {
                let strings = f.relation.as_str().len()
                    + 1
                    + f.values.iter().map(|v| v.as_str().len() + 1).sum::<usize>();
                strings + 1 // arity varint
            })
            .sum();
        assert!(
            body.len() < naive,
            "symbol table failed to compress: {} >= {naive}",
            body.len()
        );
        let back: Instance = decode_body(&body).unwrap();
        assert_eq!(back, instance);
    }

    #[test]
    fn queries_re_validate_on_decode() {
        // Hand-craft a body whose head variable is not in the body atom:
        // the decoder must reject it, not construct an unsafe query.
        let q = ConjunctiveQuery::parse("T(x) :- R(x, y).").unwrap();
        let mut enc = Encoder::new();
        // head T(w) — w never occurs in the body
        Atom::from_names("T", &["w"]).encode(&mut enc);
        enc.usize(1);
        q.body()[0].encode(&mut enc);
        let body = enc.finish();
        let err = decode_body::<ConjunctiveQuery>(&body).unwrap_err();
        assert!(matches!(err, DecodeError::Invalid(_)), "{err}");
    }

    #[test]
    fn bad_symbol_references_are_bounds_checked() {
        let mut enc = Encoder::new();
        enc.u64(999); // symbol index into an empty table
        let body = enc.finish();
        let err = decode_body::<Symbol>(&body).unwrap_err();
        assert!(
            matches!(err, DecodeError::SymbolIndexOutOfRange { index: 999, .. }),
            "{err}"
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = encode_body(&Fact::from_names("R", &["a"]));
        body.push(0x00);
        let err = decode_body::<Fact>(&body).unwrap_err();
        assert_eq!(err, DecodeError::TrailingBytes { count: 1 });
    }

    #[test]
    fn eval_options_round_trip_every_combination() {
        for ordering in [JoinOrdering::Naive, JoinOrdering::CostAware] {
            for use_indexes in [false, true] {
                for join_strategy in [
                    JoinStrategy::Binary,
                    JoinStrategy::Multiway,
                    JoinStrategy::Auto,
                ] {
                    for adaptive_factor in [0, 4, u32::MAX] {
                        let options = EvalOptions {
                            ordering,
                            use_indexes,
                            join_strategy,
                            adaptive_factor,
                        };
                        let body = encode_body(&options);
                        assert_eq!(decode_body::<EvalOptions>(&body).unwrap(), options);
                    }
                }
            }
        }
    }

    #[test]
    fn eval_options_reject_unknown_enum_bytes() {
        // An ordering byte nothing encodes
        let mut enc = Encoder::new();
        enc.byte(9);
        let err = decode_body::<EvalOptions>(&enc.finish()).unwrap_err();
        assert!(
            matches!(
                err,
                DecodeError::UnknownTag {
                    context: "JoinOrdering",
                    tag: 9
                }
            ),
            "{err}"
        );
        // A strategy byte nothing encodes
        let mut enc = Encoder::new();
        enc.byte(0);
        enc.bool(true);
        enc.byte(7);
        let err = decode_body::<EvalOptions>(&enc.finish()).unwrap_err();
        assert!(
            matches!(
                err,
                DecodeError::UnknownTag {
                    context: "JoinStrategy",
                    tag: 7
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn every_truncation_of_a_body_errors_not_panics() {
        let q = ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap();
        let body = encode_body(&q);
        for cut in 0..body.len() {
            assert!(
                decode_body::<ConjunctiveQuery>(&body[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
    }
}
