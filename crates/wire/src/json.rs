//! A small JSON document builder.
//!
//! `pcq-analyze run --json` historically rendered its report with nested
//! `format!` strings — every new field risked an escaping or comma bug the
//! compiler could not see. [`JsonValue`] builds the document as a tree and
//! serializes it compactly (no whitespace, one line) with correct string
//! escaping everywhere; it is the serialization-subsystem counterpart of
//! the binary codec for human/tool-facing output.

use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counts, sizes, microseconds).
    UInt(u128),
    /// A float rendered with a fixed number of decimals (ratios). NaN and
    /// infinities render as `null` (JSON has no spelling for them).
    Fixed {
        /// The value.
        value: f64,
        /// Number of decimal places.
        decimals: u8,
    },
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved as inserted.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn array(items: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Array(items.into_iter().collect())
    }

    /// A float rendered with `decimals` decimal places.
    pub fn fixed(value: f64, decimals: u8) -> JsonValue {
        JsonValue::Fixed { value, decimals }
    }

    /// Appends a `(key, value)` pair to an object.
    ///
    /// # Panics
    /// Panics when `self` is not an object — that is a programming error,
    /// not a data error.
    pub fn push(&mut self, key: impl Into<String>, value: JsonValue) -> &mut JsonValue {
        match self {
            JsonValue::Object(pairs) => pairs.push((key.into(), value)),
            other => panic!("JsonValue::push on a non-object {other:?}"),
        }
        self
    }
}

impl JsonValue {
    /// Parses a JSON document — the inverse of the `Display` rendering,
    /// for tools that read documents this crate (or anything else) wrote:
    /// `pcq-analyze trace summarize` loads Chrome-trace files through
    /// this. Non-negative integers parse as [`JsonValue::UInt`]; any other
    /// number (negative, fractional, exponent) parses as
    /// [`JsonValue::Fixed`] keeping its printed decimal count.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            at: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.at != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.at));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for missing keys and non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload of a `UInt` that fits in a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }
}

/// Maximum container nesting the parser accepts. Recursive descent uses
/// the call stack, so unbounded input like `[[[[…` would otherwise
/// overflow it; 128 levels is far beyond any document we emit.
const MAX_DEPTH: usize = 128;

/// A recursive-descent JSON parser over raw bytes (JSON structure is
/// ASCII; string contents pass through as UTF-8).
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.at) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                char::from(byte),
                self.at
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected '{}' at byte {}",
                char::from(other),
                self.at
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    /// Runs a container parser one nesting level deeper, enforcing
    /// [`MAX_DEPTH`] so hostile input cannot overflow the call stack.
    fn nested(
        &mut self,
        parse: impl FnOnce(&mut Self) -> Result<JsonValue, String>,
    ) -> Result<JsonValue, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.at
            ));
        }
        self.depth += 1;
        let value = parse(self);
        self.depth -= 1;
        value
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.at + 1)?;
                            self.at += 4;
                            let scalar = if (0xd800..0xdc00).contains(&code) {
                                // A high surrogate: combine with a
                                // following `\uDC00`-`\uDFFF` escape into
                                // one supplementary-plane scalar. A lone
                                // (or mismatched) surrogate maps to
                                // U+FFFD rather than failing the parse.
                                match self.low_surrogate() {
                                    Some(low) => {
                                        self.at += 6;
                                        0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                                    }
                                    None => 0xfffd,
                                }
                            } else {
                                code
                            };
                            out.push(char::from_u32(scalar).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar so multi-byte text
                    // survives the byte-wise walk.
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.at += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    /// Reads four hex digits starting at byte `at`.
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
        u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())
    }

    /// When the bytes after the current `\uXXXX` escape (whose last hex
    /// digit `self.at` sits on) spell another `\uXXXX` escape carrying a
    /// low surrogate, returns its code without consuming anything.
    fn low_surrogate(&self) -> Option<u32> {
        if self.bytes.get(self.at + 1) != Some(&b'\\') || self.bytes.get(self.at + 2) != Some(&b'u')
        {
            return None;
        }
        let code = self.hex4(self.at + 3).ok()?;
        (0xdc00..0xe000).contains(&code).then_some(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while let Some(b'0'..=b'9') = self.peek() {
            self.at += 1;
        }
        let mut decimals = 0u8;
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.at += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.at += 1;
                decimals = decimals.saturating_add(1);
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            fractional = true;
            self.at += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.at += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.at += 1;
            }
            // Exponent notation loses the printed-decimals round-trip;
            // render with enough digits to stay faithful.
            decimals = decimals.max(6);
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("digits are ASCII");
        if !fractional && !text.starts_with('-') {
            return text
                .parse::<u128>()
                .map(JsonValue::UInt)
                .map_err(|e| format!("bad number '{text}': {e}"));
        }
        text.parse::<f64>()
            .map(|value| JsonValue::Fixed { value, decimals })
            .map_err(|e| format!("bad number '{text}': {e}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

impl From<bool> for JsonValue {
    fn from(value: bool) -> JsonValue {
        JsonValue::Bool(value)
    }
}

impl From<usize> for JsonValue {
    fn from(value: usize) -> JsonValue {
        JsonValue::UInt(value as u128)
    }
}

impl From<u64> for JsonValue {
    fn from(value: u64) -> JsonValue {
        JsonValue::UInt(u128::from(value))
    }
}

impl From<u128> for JsonValue {
    fn from(value: u128) -> JsonValue {
        JsonValue::UInt(value)
    }
}

impl From<&str> for JsonValue {
    fn from(value: &str) -> JsonValue {
        JsonValue::Str(value.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(value: String) -> JsonValue {
        JsonValue::Str(value)
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(value: Option<T>) -> JsonValue {
        value.map_or(JsonValue::Null, Into::into)
    }
}

/// Escapes a string for a JSON string literal (quotes, backslashes,
/// control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::UInt(n) => write!(f, "{n}"),
            JsonValue::Fixed { value, decimals } => {
                if value.is_finite() {
                    write!(f, "{value:.*}", usize::from(*decimals))
                } else {
                    write!(f, "null")
                }
            }
            JsonValue::Str(s) => write!(f, "\"{}\"", escape(s)),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(pairs) => {
                write!(f, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{value}", escape(key))?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_inverts_display() {
        let doc = JsonValue::object([
            ("name", JsonValue::from("T(x) :- R(x, \"y\").\n")),
            ("count", JsonValue::from(42usize)),
            ("ratio", JsonValue::fixed(1.5, 4)),
            ("ok", JsonValue::from(true)),
            ("missing", JsonValue::Null),
            (
                "items",
                JsonValue::array([JsonValue::from(0u64), JsonValue::from("x")]),
            ),
        ]);
        let reparsed = JsonValue::parse(&doc.to_string()).unwrap();
        assert_eq!(reparsed, doc);
        assert_eq!(reparsed.get("count").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(
            reparsed.get("name").and_then(JsonValue::as_str),
            Some("T(x) :- R(x, \"y\").\n")
        );
        assert_eq!(
            reparsed
                .get("items")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn parse_handles_whitespace_escapes_and_unicode() {
        let parsed = JsonValue::parse(
            " { \"a\" : [ 1 , -2.5 , \"\\u0041\\\\\" , \"é\" ] ,\n \"b\" : { } } ",
        )
        .unwrap();
        let items = parsed.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(items[0], JsonValue::UInt(1));
        assert_eq!(
            items[1],
            JsonValue::Fixed {
                value: -2.5,
                decimals: 1
            }
        );
        assert_eq!(items[2].as_str(), Some("A\\"));
        assert_eq!(items[3].as_str(), Some("é"));
        assert_eq!(parsed.get("b"), Some(&JsonValue::Object(Vec::new())));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let hostile = "[".repeat(4096);
        let err = JsonValue::parse(&hostile).unwrap_err();
        assert!(err.contains("nesting deeper than"), "got: {err}");
        let hostile_objects = "{\"a\":".repeat(4096);
        let err = JsonValue::parse(&hostile_objects).unwrap_err();
        assert!(err.contains("nesting deeper than"), "got: {err}");
        // Reasonable nesting still parses fine.
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(JsonValue::parse(&deep).is_ok());
    }

    #[test]
    fn surrogate_pairs_combine_into_one_scalar() {
        let parsed = JsonValue::parse("\"\\uD83D\\uDE00\"").unwrap();
        assert_eq!(parsed.as_str(), Some("😀"));
        // A pair followed by ordinary text keeps its position.
        let parsed = JsonValue::parse("\"a\\uD834\\uDD1Eb\"").unwrap();
        assert_eq!(parsed.as_str(), Some("a\u{1d11e}b"));
    }

    #[test]
    fn lone_surrogates_map_to_replacement_character() {
        // A high surrogate with no low after it.
        assert_eq!(
            JsonValue::parse("\"\\uD800x\"").unwrap().as_str(),
            Some("\u{fffd}x")
        );
        // A high surrogate followed by a non-surrogate escape: the escape
        // survives on its own.
        assert_eq!(
            JsonValue::parse("\"\\uD800\\u0041\"").unwrap().as_str(),
            Some("\u{fffd}A")
        );
        // A low surrogate on its own.
        assert_eq!(
            JsonValue::parse("\"\\uDC00\"").unwrap().as_str(),
            Some("\u{fffd}")
        );
    }

    #[test]
    fn escape_sequences_cover_the_full_set() {
        let parsed = JsonValue::parse("\"\\b\\f\\n\\r\\t\\/\\\\\\\"\"").unwrap();
        assert_eq!(parsed.as_str(), Some("\u{8}\u{c}\n\r\t/\\\""));
        assert!(JsonValue::parse("\"\\x\"").is_err());
        assert!(JsonValue::parse("\"\\u12\"").is_err());
        assert!(JsonValue::parse("\"\\uZZZZ\"").is_err());
    }

    #[test]
    fn trailing_garbage_after_valid_document_is_rejected() {
        for bad in ["{\"a\":1}x", "[1] [2]", "truefalse", "42,", "null}"] {
            let err = JsonValue::parse(bad).unwrap_err();
            assert!(
                err.contains("trailing data") || err.contains("bad literal"),
                "{bad:?} gave: {err}"
            );
        }
        // Trailing whitespace is fine.
        assert!(JsonValue::parse("{\"a\":1}  \n").is_ok());
    }

    #[test]
    fn renders_compact_json() {
        let mut doc = JsonValue::object([
            ("name", JsonValue::from("T(x) :- R(x, \"y\").")),
            ("count", JsonValue::from(42usize)),
            ("ratio", JsonValue::fixed(1.5, 4)),
            ("ok", JsonValue::from(true)),
            ("missing", JsonValue::Null),
        ]);
        doc.push(
            "items",
            JsonValue::array([JsonValue::from(1u64), JsonValue::from(2u64)]),
        );
        assert_eq!(
            doc.to_string(),
            r#"{"name":"T(x) :- R(x, \"y\").","count":42,"ratio":1.5000,"ok":true,"missing":null,"items":[1,2]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\nb\t\"c\"\\"), "a\\nb\\t\\\"c\\\"\\\\");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(JsonValue::fixed(f64::NAN, 2).to_string(), "null");
        assert_eq!(JsonValue::fixed(f64::INFINITY, 2).to_string(), "null");
    }

    #[test]
    fn options_lift_into_null() {
        assert_eq!(JsonValue::from(None::<&str>), JsonValue::Null);
        assert_eq!(JsonValue::from(Some("x")).to_string(), "\"x\"".to_string());
    }
}
