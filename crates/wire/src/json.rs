//! A small JSON document builder.
//!
//! `pcq-analyze run --json` historically rendered its report with nested
//! `format!` strings — every new field risked an escaping or comma bug the
//! compiler could not see. [`JsonValue`] builds the document as a tree and
//! serializes it compactly (no whitespace, one line) with correct string
//! escaping everywhere; it is the serialization-subsystem counterpart of
//! the binary codec for human/tool-facing output.

use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counts, sizes, microseconds).
    UInt(u128),
    /// A float rendered with a fixed number of decimals (ratios). NaN and
    /// infinities render as `null` (JSON has no spelling for them).
    Fixed {
        /// The value.
        value: f64,
        /// Number of decimal places.
        decimals: u8,
    },
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved as inserted.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn array(items: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Array(items.into_iter().collect())
    }

    /// A float rendered with `decimals` decimal places.
    pub fn fixed(value: f64, decimals: u8) -> JsonValue {
        JsonValue::Fixed { value, decimals }
    }

    /// Appends a `(key, value)` pair to an object.
    ///
    /// # Panics
    /// Panics when `self` is not an object — that is a programming error,
    /// not a data error.
    pub fn push(&mut self, key: impl Into<String>, value: JsonValue) -> &mut JsonValue {
        match self {
            JsonValue::Object(pairs) => pairs.push((key.into(), value)),
            other => panic!("JsonValue::push on a non-object {other:?}"),
        }
        self
    }
}

impl From<bool> for JsonValue {
    fn from(value: bool) -> JsonValue {
        JsonValue::Bool(value)
    }
}

impl From<usize> for JsonValue {
    fn from(value: usize) -> JsonValue {
        JsonValue::UInt(value as u128)
    }
}

impl From<u64> for JsonValue {
    fn from(value: u64) -> JsonValue {
        JsonValue::UInt(u128::from(value))
    }
}

impl From<u128> for JsonValue {
    fn from(value: u128) -> JsonValue {
        JsonValue::UInt(value)
    }
}

impl From<&str> for JsonValue {
    fn from(value: &str) -> JsonValue {
        JsonValue::Str(value.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(value: String) -> JsonValue {
        JsonValue::Str(value)
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(value: Option<T>) -> JsonValue {
        value.map_or(JsonValue::Null, Into::into)
    }
}

/// Escapes a string for a JSON string literal (quotes, backslashes,
/// control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::UInt(n) => write!(f, "{n}"),
            JsonValue::Fixed { value, decimals } => {
                if value.is_finite() {
                    write!(f, "{value:.*}", usize::from(*decimals))
                } else {
                    write!(f, "null")
                }
            }
            JsonValue::Str(s) => write!(f, "\"{}\"", escape(s)),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(pairs) => {
                write!(f, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{value}", escape(key))?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let mut doc = JsonValue::object([
            ("name", JsonValue::from("T(x) :- R(x, \"y\").")),
            ("count", JsonValue::from(42usize)),
            ("ratio", JsonValue::fixed(1.5, 4)),
            ("ok", JsonValue::from(true)),
            ("missing", JsonValue::Null),
        ]);
        doc.push(
            "items",
            JsonValue::array([JsonValue::from(1u64), JsonValue::from(2u64)]),
        );
        assert_eq!(
            doc.to_string(),
            r#"{"name":"T(x) :- R(x, \"y\").","count":42,"ratio":1.5000,"ok":true,"missing":null,"items":[1,2]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\nb\t\"c\"\\"), "a\\nb\\t\\\"c\\\"\\\\");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(JsonValue::fixed(f64::NAN, 2).to_string(), "null");
        assert_eq!(JsonValue::fixed(f64::INFINITY, 2).to_string(), "null");
    }

    #[test]
    fn options_lift_into_null() {
        assert_eq!(JsonValue::from(None::<&str>), JsonValue::Null);
        assert_eq!(JsonValue::from(Some("x")).to_string(), "\"x\"".to_string());
    }
}
