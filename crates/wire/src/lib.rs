//! # wire — serialization and cross-process transport
//!
//! Everything that crosses a process boundary (or a file boundary) in this
//! workspace is owned by this crate:
//!
//! * [`codec`] — the compact binary codec: varint lengths, a per-message
//!   symbol table (interned names ship as small integers), and the
//!   [`Encode`] / [`Decode`] impls for facts, instances, queries, networks,
//!   chunk batches and round-control messages,
//! * [`frame`] — the framing layer: `PCQW` magic, version byte, varint
//!   body length; frames are self-delimiting so they concatenate on pipes,
//! * [`Message`] — the protocol vocabulary: chunk shipping plus the
//!   `Barrier` / `BarrierAck` / `Shutdown` round-control messages,
//! * [`Scenario`] — the textual scenario format: one file describing
//!   query, instance, network/policy schedule, round cap and feedback
//!   relation, with a pretty-printer that is the parser's exact inverse,
//! * [`json`] — the JSON emitter (and parser) behind `pcq-analyze run
//!   --json` and the Chrome-trace tooling,
//! * [`trace_export`] — Chrome-trace-event export of merged coordinator
//!   + worker timelines, plus the rollups behind `pcq-analyze trace
//!   summarize`,
//! * [`trace_diff`] — phase/process/round comparison of two trace
//!   summaries with cause attribution, behind `pcq-analyze trace diff`,
//! * [`metrics_export`] — JSON export of [`obs::Registry`] counters and
//!   histogram quantiles, behind `pcq-analyze run --metrics`,
//! * [`ProcessTransport`] — a [`distribution::Transport`] that spawns
//!   `pcq-analyze worker` subprocesses and ships binary-encoded chunks
//!   over their stdio pipes, making engine rounds genuinely cross-process
//!   ([`run_worker`] is the worker side),
//! * [`SocketTransport`] — the same protocol over TCP: a listener-side
//!   coordinator, workers connecting with `pcq-analyze worker --connect`
//!   ([`run_worker_connect`] is that side), shared with the process
//!   transport through one pipelined driver that keeps a bounded window
//!   of jobs in flight per worker and requeues a dead worker's
//!   unanswered jobs onto the survivors.
//!
//! The vendored `serde` stub played no part here: the codec is
//! hand-rolled against the concrete types, dependency-free, and tested for
//! `decode(encode(x)) == x` plus never-panicking rejection of corrupted
//! and truncated input.
//!
//! ## Example
//!
//! ```
//! use wire::{Scenario, frame};
//!
//! let scenario = Scenario::parse(
//!     "query T(x, z) :- R(x, y), R(y, z).
//!      instance { R(a, b). R(b, c). }
//!      schedule hash(2), hypercube(2)
//!      rounds 4
//!      feedback R",
//! ).unwrap();
//!
//! // Textual round-trip: printing and re-parsing is the identity.
//! assert_eq!(Scenario::parse(&scenario.to_string()).unwrap(), scenario);
//!
//! // Binary round-trip: framed bytes decode to an equal value.
//! let bytes = frame::encode_frame(&scenario);
//! assert_eq!(frame::decode_frame::<Scenario>(&bytes).unwrap(), scenario);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod driver;
pub mod frame;
pub mod json;
mod message;
pub mod metrics_export;
mod process;
mod scenario;
mod socket;
pub mod trace_diff;
pub mod trace_export;

pub use codec::{decode_body, encode_body, Decode, DecodeError, Decoder, Encode, Encoder};
pub use frame::{decode_frame, encode_frame, read_frame, read_frame_counted, write_frame};
pub use json::JsonValue;
pub use message::{ChunkBatch, DeltaBatch, EvalChunkRef, EvalDeltaRef, Message, TraceContext};
pub use metrics_export::{merged_registry_json, registry_json};
pub use process::{run_worker, run_worker_slowed, run_worker_with_fault, ProcessTransport};
pub use scenario::{ExplicitSpec, NetworkSpec, PolicySpec, Scenario, ScenarioError};
pub use socket::{run_worker_connect, SocketTransport};
pub use trace_diff::{diff_summaries, DiffOptions, TraceDiff};
pub use trace_export::{
    check_well_formed, chrome_trace, dropped_events_field, events_from_doc, parse_chrome_trace,
    TraceSummary,
};
