//! The framing layer: magic number, version byte, varint body length.
//!
//! ```text
//! frame := "PCQW"  version:u8  varint(body_len)  body
//!           4 bytes  1 byte     1..10 bytes       body_len bytes
//! ```
//!
//! The magic rejects non-wire input immediately (piping a text file into
//! `pcq-analyze decode` fails on byte 0, not deep inside the codec), the
//! version byte lets future encodings coexist on one stream, and the
//! explicit length makes frames self-delimiting so they can be
//! concatenated on a pipe. The body is a codec body
//! (see [`crate::codec`]): symbol table followed by payload.

use std::io::{Read, Write};

use crate::codec::{
    decode_body, encode_body, read_varint, write_varint, Decode, DecodeError, Encode,
};

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"PCQW";

/// The current wire-format version.
pub const VERSION: u8 = 1;

/// Sanity cap on a frame body: a declared length beyond this is treated as
/// corruption rather than trusted with an allocation (1 GiB).
pub const MAX_BODY_LEN: u64 = 1 << 30;

/// Encodes `value` as one complete frame.
pub fn encode_frame<T: Encode>(value: &T) -> Vec<u8> {
    let body = encode_body(value);
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    write_varint(&mut out, body.len() as u64);
    out.extend_from_slice(&body);
    out
}

/// Decodes one value from `bytes`, which must contain exactly one frame
/// (no trailing bytes). Never panics on corrupted input.
pub fn decode_frame<T: Decode>(bytes: &[u8]) -> Result<T, DecodeError> {
    let (body, rest) = split_frame(bytes)?;
    if !rest.is_empty() {
        return Err(DecodeError::TrailingBytes { count: rest.len() });
    }
    decode_body(body)
}

/// Splits the first frame off `bytes`: returns its body and the remaining
/// input (frames are self-delimiting, so streams concatenate).
pub fn split_frame(bytes: &[u8]) -> Result<(&[u8], &[u8]), DecodeError> {
    if bytes.len() < MAGIC.len() {
        return Err(DecodeError::Truncated);
    }
    let (magic, rest) = bytes.split_at(MAGIC.len());
    if magic != MAGIC {
        return Err(DecodeError::BadMagic([
            magic[0], magic[1], magic[2], magic[3],
        ]));
    }
    let (&version, rest) = rest.split_first().ok_or(DecodeError::Truncated)?;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let (len, used) = read_varint(rest)?;
    if len > MAX_BODY_LEN {
        return Err(DecodeError::FrameTooLarge {
            len,
            limit: MAX_BODY_LEN,
        });
    }
    let rest = &rest[used..];
    if (rest.len() as u64) < len {
        return Err(DecodeError::Truncated);
    }
    Ok(rest.split_at(len as usize))
}

/// Writes one frame to a stream and flushes it.
pub fn write_frame<T: Encode>(w: &mut impl Write, value: &T) -> Result<(), DecodeError> {
    w.write_all(&encode_frame(value))
        .and_then(|()| w.flush())
        .map_err(|e| DecodeError::Io(e.to_string()))
}

/// Reads one frame from a stream. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed the pipe between messages); EOF in the
/// middle of a frame is [`DecodeError::Truncated`].
pub fn read_frame<T: Decode>(r: &mut impl Read) -> Result<Option<T>, DecodeError> {
    Ok(read_frame_counted(r)?.map(|(value, _)| value))
}

/// Reads one frame from a stream like [`read_frame`] and also reports the
/// number of bytes the frame occupied on the wire (magic + version +
/// length varint + body) — the honest size transports add to their
/// communication-volume counters for worker→coordinator reply frames.
pub fn read_frame_counted<T: Decode>(r: &mut impl Read) -> Result<Option<(T, u64)>, DecodeError> {
    let mut magic = [0u8; 4];
    match read_exact_or_eof(r, &mut magic)? {
        0 => return Ok(None),
        n if n < magic.len() => return Err(DecodeError::Truncated),
        _ => {}
    }
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)
        .map_err(|e| io_or_truncated(&e))?;
    if version[0] != VERSION {
        return Err(DecodeError::UnsupportedVersion(version[0]));
    }
    let (len, varint_bytes) = read_stream_varint(r)?;
    if len > MAX_BODY_LEN {
        return Err(DecodeError::FrameTooLarge {
            len,
            limit: MAX_BODY_LEN,
        });
    }
    // Don't trust the declared length for the allocation: read through
    // `take`, which stops at the real end of input.
    let mut body = Vec::with_capacity(len.min(1 << 20) as usize);
    r.take(len)
        .read_to_end(&mut body)
        .map_err(|e| DecodeError::Io(e.to_string()))?;
    if (body.len() as u64) < len {
        return Err(DecodeError::Truncated);
    }
    let wire_len = MAGIC.len() as u64 + 1 + varint_bytes as u64 + len;
    decode_body(&body).map(|value| Some((value, wire_len)))
}

/// Fills `buf` from `r`, tolerating EOF: returns how many bytes were read
/// (0 = clean EOF before the first byte).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, DecodeError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(DecodeError::Io(e.to_string())),
        }
    }
    Ok(filled)
}

fn io_or_truncated(e: &std::io::Error) -> DecodeError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        DecodeError::Truncated
    } else {
        DecodeError::Io(e.to_string())
    }
}

/// Reads a LEB128 varint byte-by-byte from a stream, returning the value
/// and how many bytes it occupied.
fn read_stream_varint(r: &mut impl Read) -> Result<(u64, usize), DecodeError> {
    let mut bytes = Vec::with_capacity(10);
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte).map_err(|e| io_or_truncated(&e))?;
        bytes.push(byte[0]);
        if byte[0] & 0x80 == 0 {
            let (value, used) = read_varint(&bytes)?;
            return Ok((value, used));
        }
        if bytes.len() > 10 {
            return Err(DecodeError::VarintOverflow);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::Fact;

    #[test]
    fn frames_round_trip_and_self_delimit() {
        let a = Fact::from_names("R", &["x", "y"]);
        let b = Fact::from_names("S", &["z"]);
        let mut stream = encode_frame(&a);
        stream.extend(encode_frame(&b));

        let (body_a, rest) = split_frame(&stream).unwrap();
        let (body_b, tail) = split_frame(rest).unwrap();
        assert!(tail.is_empty());
        assert_eq!(crate::codec::decode_body::<Fact>(body_a).unwrap(), a);
        assert_eq!(crate::codec::decode_body::<Fact>(body_b).unwrap(), b);

        // and through the stream API
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(read_frame::<Fact>(&mut cursor).unwrap(), Some(a));
        assert_eq!(read_frame::<Fact>(&mut cursor).unwrap(), Some(b));
        assert_eq!(read_frame::<Fact>(&mut cursor).unwrap(), None);
    }

    #[test]
    fn counted_reads_report_the_exact_wire_length() {
        let a = Fact::from_names("R", &["x", "y"]);
        let b = Fact::from_names("SomeLongerRelationName", &["value1", "value2", "value3"]);
        let frame_a = encode_frame(&a);
        let frame_b = encode_frame(&b);
        let mut stream = frame_a.clone();
        stream.extend(frame_b.clone());

        let mut cursor = std::io::Cursor::new(stream);
        let (back_a, len_a) = read_frame_counted::<Fact>(&mut cursor).unwrap().unwrap();
        let (back_b, len_b) = read_frame_counted::<Fact>(&mut cursor).unwrap().unwrap();
        assert_eq!(back_a, a);
        assert_eq!(back_b, b);
        assert_eq!(len_a, frame_a.len() as u64, "counted = bytes produced");
        assert_eq!(len_b, frame_b.len() as u64);
        assert_eq!(read_frame_counted::<Fact>(&mut cursor).unwrap(), None);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let fact = Fact::from_names("R", &["a"]);
        let mut frame = encode_frame(&fact);
        frame[0] = b'X';
        assert!(matches!(
            decode_frame::<Fact>(&frame),
            Err(DecodeError::BadMagic(_))
        ));

        let mut frame = encode_frame(&fact);
        frame[4] = 99;
        assert_eq!(
            decode_frame::<Fact>(&frame),
            Err(DecodeError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn every_truncation_of_a_frame_errors_not_panics() {
        let fact = Fact::from_names("Edge", &["node1", "node2"]);
        let frame = encode_frame(&fact);
        for cut in 0..frame.len() {
            assert!(
                decode_frame::<Fact>(&frame[..cut]).is_err(),
                "truncation at byte {cut} must error"
            );
            let mut cursor = std::io::Cursor::new(&frame[..cut]);
            match read_frame::<Fact>(&mut cursor) {
                Ok(None) if cut == 0 => {}
                Err(_) => {}
                other => panic!("stream truncation at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_declared_length_is_corruption() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(VERSION);
        crate::codec::write_varint(&mut frame, u64::MAX);
        assert!(matches!(
            decode_frame::<Fact>(&frame),
            Err(DecodeError::FrameTooLarge { .. })
        ));
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame::<Fact>(&mut cursor),
            Err(DecodeError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn trailing_garbage_after_a_single_frame_is_rejected() {
        let mut frame = encode_frame(&Fact::from_names("R", &["a"]));
        frame.extend_from_slice(b"junk");
        assert!(matches!(
            decode_frame::<Fact>(&frame),
            Err(DecodeError::TrailingBytes { .. })
        ));
    }
}
