//! Phase-level comparison of two trace summaries — the analysis behind
//! `pcq-analyze trace diff <base.json> <new.json>`.
//!
//! Where `bench-diff` gates on whole-benchmark totals, this diff aligns
//! the *attributed* rollups of two traced runs: per-phase totals (did
//! `window_wait` grow?), per-round critical-path durations (which round
//! got slower?), and per-process wall clocks. A phase whose total grows
//! past the threshold is a regression; round regressions carry a cause
//! line naming the phases that grew versus stayed flat, so the report
//! reads "round 3 +38%: window_wait grew 5.1x, eval flat" rather than
//! just "slower".
//!
//! Noise control: phases below `min_us` in **both** runs are ignored —
//! micro-phases jitter by large ratios without mattering. The gate is
//! deliberately one-sided (improvements never fail a diff).

use std::collections::BTreeSet;
use std::fmt;

use crate::json::JsonValue;
use crate::trace_export::{process_label, TraceSummary};

/// Knobs for [`diff_summaries`].
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// A phase (or round) counts as regressed when it grows by more than
    /// this percentage.
    pub threshold_pct: f64,
    /// Ignore phases below this total in both runs — ratios over
    /// microsecond noise are meaningless.
    pub min_us: u64,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            threshold_pct: 25.0,
            min_us: 1_000,
        }
    }
}

/// Growth of `new` over `base` in percent (`None` when `base` is zero —
/// a phase that appeared from nothing has no meaningful ratio).
fn change_pct(base: u64, new: u64) -> Option<f64> {
    (base > 0).then(|| (new as f64 - base as f64) * 100.0 / base as f64)
}

/// Renders a change as `+38.2%` / `-12.0%` / `new` / `0%`.
fn format_change(base: u64, new: u64) -> String {
    match change_pct(base, new) {
        Some(pct) => format!("{pct:+.1}%"),
        None if new > 0 => "new".to_string(),
        None => "0%".to_string(),
    }
}

/// One span name compared across the two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseDelta {
    /// Span name.
    pub name: String,
    /// Total microseconds in the base run.
    pub base_total_us: u64,
    /// Total microseconds in the new run.
    pub new_total_us: u64,
    /// Span count in the base run.
    pub base_count: u64,
    /// Span count in the new run.
    pub new_count: u64,
    /// Growth in percent (`None` when absent from the base run).
    pub change_pct: Option<f64>,
    /// Whether this phase trips the regression gate.
    pub regressed: bool,
}

/// One critical-path round compared across the two runs (aligned by
/// round number; a round present in only one run has `None` on the
/// other side).
#[derive(Clone, Debug, PartialEq)]
pub struct RoundDelta {
    /// Round number.
    pub round: u64,
    /// Duration in the base run.
    pub base_dur_us: Option<u64>,
    /// Duration in the new run.
    pub new_dur_us: Option<u64>,
    /// Growth in percent when present in both runs with nonzero base.
    pub change_pct: Option<f64>,
    /// Whether this round trips the regression gate.
    pub regressed: bool,
}

/// One process lane's wall clock compared across the two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessDelta {
    /// Lane label (`coordinator`, `worker 0`, …).
    pub label: String,
    /// Wall-clock extent in the base run.
    pub base_wall_us: u64,
    /// Wall-clock extent in the new run.
    pub new_wall_us: u64,
    /// Growth in percent.
    pub change_pct: Option<f64>,
}

/// The full comparison: aligned rollups plus the regression verdicts.
#[derive(Clone, Debug, Default)]
pub struct TraceDiff {
    /// Every phase seen in either run, ordered by name.
    pub phases: Vec<PhaseDelta>,
    /// Every critical-path round seen in either run, ordered by number.
    pub rounds: Vec<RoundDelta>,
    /// Every process lane seen in either run.
    pub processes: Vec<ProcessDelta>,
    /// Human-readable regression lines (with causes); empty means the
    /// diff is clean.
    pub regressions: Vec<String>,
    /// Dropped events across both inputs — nonzero means the comparison
    /// runs on incomplete timelines.
    pub dropped_events: u64,
    /// The threshold the verdicts used.
    pub threshold_pct: f64,
}

impl TraceDiff {
    /// True when no phase or round regressed past the threshold.
    pub fn clean(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the diff as a JSON document (for `--json`).
    pub fn to_json(&self) -> JsonValue {
        let phases = self
            .phases
            .iter()
            .map(|p| {
                (
                    p.name.clone(),
                    JsonValue::object([
                        ("base_total_us", JsonValue::from(p.base_total_us)),
                        ("new_total_us", JsonValue::from(p.new_total_us)),
                        ("base_count", JsonValue::from(p.base_count)),
                        ("new_count", JsonValue::from(p.new_count)),
                        (
                            "change_pct",
                            p.change_pct
                                .map(|pct| JsonValue::fixed(pct, 1))
                                .unwrap_or(JsonValue::Null),
                        ),
                        ("regressed", JsonValue::from(p.regressed)),
                    ]),
                )
            })
            .collect();
        let rounds = self
            .rounds
            .iter()
            .map(|r| {
                JsonValue::object([
                    ("round", JsonValue::from(r.round)),
                    ("base_dur_us", JsonValue::from(r.base_dur_us)),
                    ("new_dur_us", JsonValue::from(r.new_dur_us)),
                    (
                        "change_pct",
                        r.change_pct
                            .map(|pct| JsonValue::fixed(pct, 1))
                            .unwrap_or(JsonValue::Null),
                    ),
                    ("regressed", JsonValue::from(r.regressed)),
                ])
            })
            .collect();
        let processes = self
            .processes
            .iter()
            .map(|p| {
                (
                    p.label.clone(),
                    JsonValue::object([
                        ("base_wall_us", JsonValue::from(p.base_wall_us)),
                        ("new_wall_us", JsonValue::from(p.new_wall_us)),
                        (
                            "change_pct",
                            p.change_pct
                                .map(|pct| JsonValue::fixed(pct, 1))
                                .unwrap_or(JsonValue::Null),
                        ),
                    ]),
                )
            })
            .collect();
        JsonValue::object([
            ("clean", JsonValue::from(self.clean())),
            ("threshold_pct", JsonValue::fixed(self.threshold_pct, 1)),
            ("dropped_events", JsonValue::from(self.dropped_events)),
            (
                "regressions",
                JsonValue::Array(
                    self.regressions
                        .iter()
                        .map(|line| JsonValue::from(line.as_str()))
                        .collect(),
                ),
            ),
            ("phases", JsonValue::Object(phases)),
            ("rounds", JsonValue::Array(rounds)),
            ("processes", JsonValue::Object(processes)),
        ])
    }
}

/// The one-sided regression gate shared by phases and rounds.
fn regresses(base: u64, new: u64, options: &DiffOptions) -> bool {
    if base < options.min_us && new < options.min_us {
        return false;
    }
    match change_pct(base, new) {
        Some(pct) => pct > options.threshold_pct,
        // Appeared from nothing: only meaningful when the new total
        // clears the noise floor on its own.
        None => new >= options.min_us,
    }
}

/// Why things got slower: the phases that grew the most (by absolute
/// microseconds), contrasted with the biggest phase that stayed flat.
fn cause_line(phases: &[PhaseDelta], options: &DiffOptions) -> String {
    let mut growers: Vec<&PhaseDelta> = phases
        .iter()
        .filter(|p| p.regressed && p.new_total_us > p.base_total_us)
        .collect();
    growers.sort_by_key(|p| std::cmp::Reverse(p.new_total_us - p.base_total_us));
    let mut parts: Vec<String> = growers
        .iter()
        .take(3)
        .map(|p| {
            let growth = match (p.base_total_us, p.change_pct) {
                (0, _) => "appeared".to_string(),
                (base, _) => format!("grew {:.1}x", p.new_total_us as f64 / base as f64),
            };
            format!(
                "{} {} (+{})",
                p.name,
                growth,
                format_us(p.new_total_us - p.base_total_us)
            )
        })
        .collect();
    // The biggest phase that did NOT regress, as contrast ("eval flat").
    if let Some(flat) = phases
        .iter()
        .filter(|p| !p.regressed && p.base_total_us >= options.min_us)
        .max_by_key(|p| p.base_total_us)
    {
        parts.push(format!("{} flat", flat.name));
    }
    parts.join(", ")
}

/// Compares two summaries under the given options.
pub fn diff_summaries(base: &TraceSummary, new: &TraceSummary, options: DiffOptions) -> TraceDiff {
    let mut diff = TraceDiff {
        dropped_events: base.dropped_events + new.dropped_events,
        threshold_pct: options.threshold_pct,
        ..TraceDiff::default()
    };

    let names: BTreeSet<&String> = base.phases.keys().chain(new.phases.keys()).collect();
    for name in names {
        let b = base.phases.get(name).cloned().unwrap_or_default();
        let n = new.phases.get(name).cloned().unwrap_or_default();
        diff.phases.push(PhaseDelta {
            name: name.clone(),
            base_total_us: b.total_us,
            new_total_us: n.total_us,
            base_count: b.count,
            new_count: n.count,
            change_pct: change_pct(b.total_us, n.total_us),
            regressed: regresses(b.total_us, n.total_us, &options),
        });
    }

    let round_numbers: BTreeSet<u64> = base
        .rounds
        .iter()
        .chain(new.rounds.iter())
        .map(|r| r.round)
        .collect();
    for round in round_numbers {
        // Rounds repeat per query in multi-query scenarios; summing per
        // number keeps the alignment stable either way.
        let total = |summary: &TraceSummary| -> Option<u64> {
            let rounds: Vec<u64> = summary
                .rounds
                .iter()
                .filter(|r| r.round == round)
                .map(|r| r.dur_us)
                .collect();
            (!rounds.is_empty()).then(|| rounds.iter().sum())
        };
        let b = total(base);
        let n = total(new);
        diff.rounds.push(RoundDelta {
            round,
            base_dur_us: b,
            new_dur_us: n,
            change_pct: change_pct(b.unwrap_or(0), n.unwrap_or(0)),
            regressed: match (b, n) {
                (Some(b), Some(n)) => regresses(b, n, &options),
                // A round present on only one side reflects different
                // convergence, not a latency regression.
                _ => false,
            },
        });
    }

    let pids: BTreeSet<u32> = base
        .processes
        .keys()
        .chain(new.processes.keys())
        .copied()
        .collect();
    for pid in pids {
        let b = base.processes.get(&pid).cloned().unwrap_or_default();
        let n = new.processes.get(&pid).cloned().unwrap_or_default();
        diff.processes.push(ProcessDelta {
            label: process_label(pid),
            base_wall_us: b.wall_us,
            new_wall_us: n.wall_us,
            change_pct: change_pct(b.wall_us, n.wall_us),
        });
    }

    let causes = cause_line(&diff.phases, &options);
    for phase in diff.phases.iter().filter(|p| p.regressed) {
        diff.regressions.push(format!(
            "phase {}: {} -> {} ({})",
            phase.name,
            format_us(phase.base_total_us),
            format_us(phase.new_total_us),
            format_change(phase.base_total_us, phase.new_total_us),
        ));
    }
    for round in diff.rounds.iter().filter(|r| r.regressed) {
        let detail = if causes.is_empty() {
            String::new()
        } else {
            format!(": {causes}")
        };
        diff.regressions.push(format!(
            "round {} {} -> {} ({}){}",
            round.round,
            format_us(round.base_dur_us.unwrap_or(0)),
            format_us(round.new_dur_us.unwrap_or(0)),
            format_change(
                round.base_dur_us.unwrap_or(0),
                round.new_dur_us.unwrap_or(0)
            ),
            detail,
        ));
    }
    diff
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped_events > 0 {
            writeln!(
                f,
                "WARNING: {} events dropped across inputs — totals are lower bounds",
                self.dropped_events
            )?;
        }
        writeln!(f, "phases:")?;
        let mut phases: Vec<&PhaseDelta> = self.phases.iter().collect();
        phases.sort_by(|a, b| {
            b.new_total_us
                .max(b.base_total_us)
                .cmp(&a.new_total_us.max(a.base_total_us))
                .then(a.name.cmp(&b.name))
        });
        for p in phases {
            writeln!(
                f,
                "  {:<22} {:>10} -> {:>10}  {:>8}{}",
                p.name,
                format_us(p.base_total_us),
                format_us(p.new_total_us),
                format_change(p.base_total_us, p.new_total_us),
                if p.regressed { "  REGRESSED" } else { "" },
            )?;
        }
        if !self.rounds.is_empty() {
            writeln!(f, "\nrounds:")?;
            for r in &self.rounds {
                let side = |v: Option<u64>| match v {
                    Some(us) => format_us(us),
                    None => "-".to_string(),
                };
                writeln!(
                    f,
                    "  round {:<4} {:>10} -> {:>10}  {:>8}{}",
                    r.round,
                    side(r.base_dur_us),
                    side(r.new_dur_us),
                    format_change(r.base_dur_us.unwrap_or(0), r.new_dur_us.unwrap_or(0)),
                    if r.regressed { "  REGRESSED" } else { "" },
                )?;
            }
        }
        if !self.processes.is_empty() {
            writeln!(f, "\nprocesses (wall clock):")?;
            for p in &self.processes {
                writeln!(
                    f,
                    "  {:<14} {:>10} -> {:>10}  {:>8}",
                    p.label,
                    format_us(p.base_wall_us),
                    format_us(p.new_wall_us),
                    format_change(p.base_wall_us, p.new_wall_us),
                )?;
            }
        }
        writeln!(f)?;
        if self.clean() {
            writeln!(
                f,
                "clean: no phase grew more than {:.0}%",
                self.threshold_pct
            )?;
        } else {
            for line in &self.regressions {
                writeln!(f, "REGRESSION {line}")?;
            }
            writeln!(
                f,
                "{} regression(s) past the {:.0}% threshold",
                self.regressions.len(),
                self.threshold_pct
            )?;
        }
        Ok(())
    }
}

/// Microseconds as a human-readable duration (`428us`, `1.204ms`, `3.50s`).
fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.3}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_export::{PhaseStats, RoundStats};

    fn summary(phases: &[(&str, u64, u64)], rounds: &[(u64, u64)]) -> TraceSummary {
        let mut s = TraceSummary::default();
        for (name, count, total) in phases {
            s.phases.insert(
                name.to_string(),
                PhaseStats {
                    count: *count,
                    total_us: *total,
                    min_us: 0,
                    max_us: *total,
                },
            );
        }
        for (round, dur) in rounds {
            s.rounds.push(RoundStats {
                round: *round,
                dur_us: *dur,
            });
        }
        s
    }

    #[test]
    fn identical_summaries_diff_clean() {
        let s = summary(&[("eval_round", 3, 30_000)], &[(0, 10_000), (1, 20_000)]);
        let diff = diff_summaries(&s, &s.clone(), DiffOptions::default());
        assert!(diff.clean(), "{:?}", diff.regressions);
        assert!(diff.to_string().contains("clean"));
    }

    #[test]
    fn grown_phase_regresses_with_cause() {
        let base = summary(
            &[("window_wait", 4, 2_000), ("eval_chunk", 4, 40_000)],
            &[(0, 42_000)],
        );
        let new = summary(
            &[("window_wait", 4, 10_200), ("eval_chunk", 4, 40_100)],
            &[(0, 60_300)],
        );
        let diff = diff_summaries(&base, &new, DiffOptions::default());
        assert!(!diff.clean());
        let text = diff.to_string();
        assert!(text.contains("REGRESSION phase window_wait"), "{text}");
        // The round regression names the grower and the flat phase.
        let round_line = diff
            .regressions
            .iter()
            .find(|l| l.starts_with("round 0"))
            .expect("round regression");
        assert!(round_line.contains("window_wait grew 5.1x"), "{round_line}");
        assert!(round_line.contains("eval_chunk flat"), "{round_line}");
    }

    #[test]
    fn improvements_and_noise_stay_clean() {
        // A big improvement and a tiny-phase blowup (under min_us in
        // both runs) are both fine.
        let base = summary(&[("eval_chunk", 4, 100_000), ("requeue_wait", 1, 10)], &[]);
        let new = summary(&[("eval_chunk", 4, 50_000), ("requeue_wait", 1, 900)], &[]);
        let diff = diff_summaries(&base, &new, DiffOptions::default());
        assert!(diff.clean(), "{:?}", diff.regressions);
    }

    #[test]
    fn phase_appearing_from_nothing_regresses_when_large() {
        let base = summary(&[("eval_chunk", 4, 50_000)], &[]);
        let new = summary(
            &[("eval_chunk", 4, 50_000), ("state_rebuild", 2, 30_000)],
            &[],
        );
        let diff = diff_summaries(&base, &new, DiffOptions::default());
        assert_eq!(diff.regressions.len(), 1);
        assert!(
            diff.regressions[0].contains("state_rebuild"),
            "{:?}",
            diff.regressions
        );
        assert!(
            diff.regressions[0].contains("new"),
            "{:?}",
            diff.regressions
        );
    }

    #[test]
    fn rounds_missing_on_one_side_do_not_regress() {
        let base = summary(&[], &[(0, 10_000)]);
        let new = summary(&[], &[(0, 10_000), (1, 50_000)]);
        let diff = diff_summaries(&base, &new, DiffOptions::default());
        assert!(diff.clean());
        assert_eq!(diff.rounds.len(), 2);
        assert_eq!(diff.rounds[1].base_dur_us, None);
    }

    #[test]
    fn threshold_is_respected() {
        let base = summary(&[("eval_chunk", 4, 100_000)], &[]);
        let new = summary(&[("eval_chunk", 4, 130_000)], &[]);
        let strict = DiffOptions {
            threshold_pct: 25.0,
            ..DiffOptions::default()
        };
        let lax = DiffOptions {
            threshold_pct: 50.0,
            ..DiffOptions::default()
        };
        assert!(!diff_summaries(&base, &new, strict).clean());
        assert!(diff_summaries(&base, &new, lax).clean());
    }

    #[test]
    fn json_rendering_parses_back() {
        let base = summary(&[("eval_chunk", 4, 100_000)], &[(0, 100_000)]);
        let new = summary(&[("eval_chunk", 4, 200_000)], &[(0, 200_000)]);
        let diff = diff_summaries(&base, &new, DiffOptions::default());
        let doc = JsonValue::parse(&diff.to_json().to_string()).unwrap();
        assert_eq!(doc.get("clean").cloned(), Some(JsonValue::Bool(false)));
        assert!(doc
            .get("regressions")
            .and_then(JsonValue::as_array)
            .is_some_and(|r| !r.is_empty()));
    }
}
