//! The top-level message vocabulary of the wire protocol.
//!
//! Every frame on a wire stream carries one [`Message`]. The
//! `EvalChunk`/`ChunkResult` pair ships work to workers and answers back;
//! `EvalDelta`/`DeltaResult` are their incremental counterparts — the
//! [`DeltaBatch`] carries only the facts new since the previous round, the
//! worker keeps its accumulated per-node state, and the answer carries only
//! the node's new derivations; `Barrier`/`BarrierAck`/`Shutdown` are the
//! round-control messages the
//! [`ProcessTransport`](crate::ProcessTransport) synchronizes rounds with;
//! the `Query`/`Instance`/`Scenario` variants are standalone payloads used
//! by `pcq-analyze encode`/`decode`.

use cq::{ConjunctiveQuery, EvalOptions, Instance, Symbol};
use distribution::Node;
use obs::{EventKind, TraceEvent};

use crate::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use crate::scenario::Scenario;

/// The trace context an eval message carries across the process boundary:
/// enough for the worker to join the coordinator's trace and parent its
/// local spans under the span that shipped the work.
///
/// `trace_id == 0` means tracing is off — workers skip recording and the
/// other fields are meaningless (encoded as zeros).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceContext {
    /// The coordinator's active trace id (0 = tracing off).
    pub trace_id: u64,
    /// The coordinator-side span the work item belongs to (0 = root).
    pub parent_span: u64,
    /// The coordinator's trace clock at send time, microseconds — the
    /// worker offsets its monotonic clock onto this timeline
    /// ([`obs::adopt_trace`]).
    pub clock_us: u64,
}

impl TraceContext {
    /// Captures the current trace (id + clock) with `parent_span` as the
    /// remote parent. All-zeros when tracing is off.
    pub fn capture(parent_span: u64) -> TraceContext {
        let trace_id = obs::current_trace();
        if trace_id == 0 {
            return TraceContext::default();
        }
        TraceContext {
            trace_id,
            parent_span,
            clock_us: obs::now_us(),
        }
    }

    /// Whether the context carries an active trace.
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }

    /// Worker side: joins the carried trace (no-op when inactive).
    pub fn adopt(&self) {
        obs::adopt_trace(self.trace_id, self.clock_us);
    }
}

impl Encode for TraceContext {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.trace_id);
        enc.u64(self.parent_span);
        enc.u64(self.clock_us);
    }
}

impl Decode for TraceContext {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TraceContext {
            trace_id: dec.u64()?,
            parent_span: dec.u64()?,
            clock_us: dec.u64()?,
        })
    }
}

const KIND_SPAN: u8 = 0;
const KIND_INSTANT: u8 = 1;

impl Encode for TraceEvent {
    fn encode(&self, enc: &mut Encoder) {
        enc.symbol(Symbol::new(&self.name));
        enc.byte(match self.kind {
            EventKind::Span => KIND_SPAN,
            EventKind::Instant => KIND_INSTANT,
        });
        enc.u64(self.ts_us);
        enc.u64(self.dur_us);
        enc.u64(u64::from(self.pid));
        enc.u64(self.tid);
        enc.u64(self.id);
        enc.u64(self.parent);
        enc.usize(self.args.len());
        for (key, value) in &self.args {
            enc.symbol(Symbol::new(key));
            enc.symbol(Symbol::new(value));
        }
    }
}

impl Decode for TraceEvent {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let name = dec.symbol()?.as_str().to_string();
        let kind = match dec.byte()? {
            KIND_SPAN => EventKind::Span,
            KIND_INSTANT => EventKind::Instant,
            tag => {
                return Err(DecodeError::UnknownTag {
                    context: "EventKind",
                    tag,
                })
            }
        };
        let ts_us = dec.u64()?;
        let dur_us = dec.u64()?;
        let pid = u32::try_from(dec.u64()?)
            .map_err(|_| DecodeError::Invalid("trace event pid exceeds u32".to_string()))?;
        let tid = dec.u64()?;
        let id = dec.u64()?;
        let parent = dec.u64()?;
        let len = dec.usize()?;
        if len > dec.remaining() {
            return Err(DecodeError::Truncated);
        }
        let mut args = Vec::with_capacity(len);
        for _ in 0..len {
            let key = dec.symbol()?.as_str().to_string();
            let value = dec.symbol()?.as_str().to_string();
            args.push((key, value));
        }
        Ok(TraceEvent {
            name,
            kind,
            ts_us,
            dur_us,
            pid,
            tid,
            id,
            parent,
            args,
        })
    }
}

/// One node's data chunk for one round — the unit the reshuffle phase
/// ships across the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkBatch {
    /// The round the chunk belongs to (guards against stream desync).
    pub round: u64,
    /// The node the chunk is addressed to.
    pub node: Node,
    /// The facts assigned to the node by the round's policy.
    pub chunk: Instance,
}

impl Encode for ChunkBatch {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.round);
        self.node.encode(enc);
        self.chunk.encode(enc);
    }
}

impl Decode for ChunkBatch {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ChunkBatch {
            round: dec.u64()?,
            node: Node::decode(dec)?,
            chunk: Instance::decode(dec)?,
        })
    }
}

/// One node's **delta** for one incremental round: only the facts that are
/// new since the previous round (coordinator → worker), or only the facts
/// the node derived for the first time (worker → coordinator). The shape
/// mirrors [`ChunkBatch`]; the distinct type keeps full-chunk and delta
/// rounds from being confused on a stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaBatch {
    /// The round the delta belongs to. Round 0 resets the node's
    /// accumulated state on the worker.
    pub round: u64,
    /// The node the delta is addressed to (or answering for).
    pub node: Node,
    /// The new facts (inbound) or new derivations (outbound).
    pub delta: Instance,
}

impl Encode for DeltaBatch {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.round);
        self.node.encode(enc);
        self.delta.encode(enc);
    }
}

impl Decode for DeltaBatch {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(DeltaBatch {
            round: dec.u64()?,
            node: Node::decode(dec)?,
            delta: Instance::decode(dec)?,
        })
    }
}

/// A complete wire message (the payload of one frame).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// A standalone conjunctive query.
    Query(ConjunctiveQuery),
    /// A standalone database instance.
    Instance(Instance),
    /// A standalone evaluation scenario.
    Scenario(Scenario),
    /// Coordinator → worker: evaluate `query` over the batch's chunk.
    EvalChunk {
        /// The query to evaluate locally.
        query: ConjunctiveQuery,
        /// How to evaluate it (join strategy, ordering, indexing) — the
        /// worker must honor these exactly, so a wire round behaves
        /// identically to an in-process one.
        options: EvalOptions,
        /// The chunk to evaluate it over.
        batch: ChunkBatch,
        /// The coordinator's trace context (all-zeros when tracing is off).
        trace: TraceContext,
    },
    /// Worker → coordinator: the local output for one chunk.
    ChunkResult {
        /// The batch's round/node with the node's local output as `chunk`.
        batch: ChunkBatch,
        /// Local evaluation wall-clock time, in microseconds.
        eval_us: u64,
    },
    /// Coordinator → worker: the round's chunks are all sent.
    Barrier {
        /// The round being closed.
        round: u64,
    },
    /// Worker → coordinator: all of the round's results are flushed.
    BarrierAck {
        /// The round being acknowledged.
        round: u64,
    },
    /// Coordinator → worker: exit cleanly.
    Shutdown,
    /// Coordinator → worker: absorb the delta into the node's accumulated
    /// state and evaluate `query` semi-naively over it (round 0 starts the
    /// node from an empty state).
    EvalDelta {
        /// The query of the incremental run.
        query: ConjunctiveQuery,
        /// How to evaluate it (see [`Message::EvalChunk`]).
        options: EvalOptions,
        /// The node's new facts for this round.
        batch: DeltaBatch,
        /// The coordinator's trace context (all-zeros when tracing is off).
        trace: TraceContext,
    },
    /// Worker → coordinator: the node's new derivations for one delta.
    DeltaResult {
        /// The batch's round/node with the node's output delta as `delta`.
        batch: DeltaBatch,
        /// Local evaluation wall-clock time, in microseconds.
        eval_us: u64,
    },
    /// Worker → coordinator: the first frame on a freshly connected socket.
    /// `worker` echoes the spawn token the coordinator handed the worker on
    /// its command line, so the coordinator can map the anonymous TCP
    /// connection back to the worker slot (and child process) it belongs to.
    Hello {
        /// The worker's slot index in the coordinator's pool.
        worker: u64,
    },
    /// Coordinator → worker: evaluate `query` over the shard the node
    /// **already holds** (the chunk or accumulated delta state left by a
    /// previous round), shipping zero input facts — the reshuffle-elision
    /// round of a multi-query run. The worker answers with an ordinary
    /// `ChunkResult` carrying its full local output.
    EvalResident {
        /// The round the request belongs to.
        round: u64,
        /// The node whose resident shard is evaluated.
        node: Node,
        /// The query to evaluate over the resident shard.
        query: ConjunctiveQuery,
        /// How to evaluate it (see [`Message::EvalChunk`]).
        options: EvalOptions,
        /// The coordinator's trace context (all-zeros when tracing is off).
        trace: TraceContext,
    },
    /// Worker → coordinator: the worker's locally recorded trace events,
    /// flushed just before each `BarrierAck` (and at shutdown). The
    /// coordinator stamps the events with the worker's lane and merges
    /// them into its own timeline. Workers send this only while a trace
    /// is active, so untraced runs pay nothing.
    TraceFlush {
        /// The worker's buffered events since its previous flush.
        events: Vec<TraceEvent>,
    },
}

const TAG_QUERY: u8 = 0;
const TAG_INSTANCE: u8 = 1;
const TAG_SCENARIO: u8 = 2;
const TAG_EVAL_CHUNK: u8 = 3;
const TAG_CHUNK_RESULT: u8 = 4;
const TAG_BARRIER: u8 = 5;
const TAG_BARRIER_ACK: u8 = 6;
const TAG_SHUTDOWN: u8 = 7;
const TAG_EVAL_DELTA: u8 = 8;
const TAG_DELTA_RESULT: u8 = 9;
const TAG_HELLO: u8 = 10;
const TAG_EVAL_RESIDENT: u8 = 11;
const TAG_TRACE_FLUSH: u8 = 12;

impl Message {
    /// A short human-readable name for the message kind (log lines,
    /// protocol errors).
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Query(_) => "query",
            Message::Instance(_) => "instance",
            Message::Scenario(_) => "scenario",
            Message::EvalChunk { .. } => "eval-chunk",
            Message::ChunkResult { .. } => "chunk-result",
            Message::Barrier { .. } => "barrier",
            Message::BarrierAck { .. } => "barrier-ack",
            Message::Shutdown => "shutdown",
            Message::EvalDelta { .. } => "eval-delta",
            Message::DeltaResult { .. } => "delta-result",
            Message::Hello { .. } => "hello",
            Message::EvalResident { .. } => "eval-resident",
            Message::TraceFlush { .. } => "trace-flush",
        }
    }
}

/// A borrowed view of [`Message::EvalDelta`]: encodes the identical frame
/// bytes without cloning the query or the delta (cf. [`EvalChunkRef`]).
pub struct EvalDeltaRef<'a> {
    /// The query of the incremental run.
    pub query: &'a ConjunctiveQuery,
    /// How the worker must evaluate it.
    pub options: EvalOptions,
    /// The delta (with its round/node routing) to absorb and evaluate.
    pub batch: &'a DeltaBatch,
    /// The coordinator's trace context.
    pub trace: TraceContext,
}

impl Encode for EvalDeltaRef<'_> {
    fn encode(&self, enc: &mut Encoder) {
        enc.byte(TAG_EVAL_DELTA);
        self.query.encode(enc);
        self.options.encode(enc);
        self.batch.encode(enc);
        self.trace.encode(enc);
    }
}

/// A borrowed view of [`Message::EvalChunk`]: encodes the identical
/// frame bytes without cloning the query or the chunk. The transport
/// ships one of these per node per round, so the owned `Message` variant
/// would cost a full chunk copy per send.
pub struct EvalChunkRef<'a> {
    /// The query the worker should evaluate.
    pub query: &'a ConjunctiveQuery,
    /// How the worker must evaluate it.
    pub options: EvalOptions,
    /// The chunk (with its round/node routing) to evaluate it over.
    pub batch: &'a ChunkBatch,
    /// The coordinator's trace context.
    pub trace: TraceContext,
}

impl Encode for EvalChunkRef<'_> {
    fn encode(&self, enc: &mut Encoder) {
        enc.byte(TAG_EVAL_CHUNK);
        self.query.encode(enc);
        self.options.encode(enc);
        self.batch.encode(enc);
        self.trace.encode(enc);
    }
}

impl Encode for Message {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Message::Query(query) => {
                enc.byte(TAG_QUERY);
                query.encode(enc);
            }
            Message::Instance(instance) => {
                enc.byte(TAG_INSTANCE);
                instance.encode(enc);
            }
            Message::Scenario(scenario) => {
                enc.byte(TAG_SCENARIO);
                scenario.encode(enc);
            }
            Message::EvalChunk {
                query,
                options,
                batch,
                trace,
            } => EvalChunkRef {
                query,
                options: *options,
                batch,
                trace: *trace,
            }
            .encode(enc),
            Message::ChunkResult { batch, eval_us } => {
                enc.byte(TAG_CHUNK_RESULT);
                batch.encode(enc);
                enc.u64(*eval_us);
            }
            Message::Barrier { round } => {
                enc.byte(TAG_BARRIER);
                enc.u64(*round);
            }
            Message::BarrierAck { round } => {
                enc.byte(TAG_BARRIER_ACK);
                enc.u64(*round);
            }
            Message::Shutdown => enc.byte(TAG_SHUTDOWN),
            Message::EvalDelta {
                query,
                options,
                batch,
                trace,
            } => EvalDeltaRef {
                query,
                options: *options,
                batch,
                trace: *trace,
            }
            .encode(enc),
            Message::DeltaResult { batch, eval_us } => {
                enc.byte(TAG_DELTA_RESULT);
                batch.encode(enc);
                enc.u64(*eval_us);
            }
            Message::Hello { worker } => {
                enc.byte(TAG_HELLO);
                enc.u64(*worker);
            }
            Message::EvalResident {
                round,
                node,
                query,
                options,
                trace,
            } => {
                enc.byte(TAG_EVAL_RESIDENT);
                enc.u64(*round);
                node.encode(enc);
                query.encode(enc);
                options.encode(enc);
                trace.encode(enc);
            }
            Message::TraceFlush { events } => {
                enc.byte(TAG_TRACE_FLUSH);
                events.encode(enc);
            }
        }
    }
}

impl Decode for Message {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.byte()? {
            TAG_QUERY => Ok(Message::Query(ConjunctiveQuery::decode(dec)?)),
            TAG_INSTANCE => Ok(Message::Instance(Instance::decode(dec)?)),
            TAG_SCENARIO => Ok(Message::Scenario(Scenario::decode(dec)?)),
            TAG_EVAL_CHUNK => Ok(Message::EvalChunk {
                query: ConjunctiveQuery::decode(dec)?,
                options: EvalOptions::decode(dec)?,
                batch: ChunkBatch::decode(dec)?,
                trace: TraceContext::decode(dec)?,
            }),
            TAG_CHUNK_RESULT => Ok(Message::ChunkResult {
                batch: ChunkBatch::decode(dec)?,
                eval_us: dec.u64()?,
            }),
            TAG_BARRIER => Ok(Message::Barrier { round: dec.u64()? }),
            TAG_BARRIER_ACK => Ok(Message::BarrierAck { round: dec.u64()? }),
            TAG_SHUTDOWN => Ok(Message::Shutdown),
            TAG_EVAL_DELTA => Ok(Message::EvalDelta {
                query: ConjunctiveQuery::decode(dec)?,
                options: EvalOptions::decode(dec)?,
                batch: DeltaBatch::decode(dec)?,
                trace: TraceContext::decode(dec)?,
            }),
            TAG_DELTA_RESULT => Ok(Message::DeltaResult {
                batch: DeltaBatch::decode(dec)?,
                eval_us: dec.u64()?,
            }),
            TAG_HELLO => Ok(Message::Hello { worker: dec.u64()? }),
            TAG_EVAL_RESIDENT => Ok(Message::EvalResident {
                round: dec.u64()?,
                node: Node::decode(dec)?,
                query: ConjunctiveQuery::decode(dec)?,
                options: EvalOptions::decode(dec)?,
                trace: TraceContext::decode(dec)?,
            }),
            TAG_TRACE_FLUSH => Ok(Message::TraceFlush {
                events: Vec::<TraceEvent>::decode(dec)?,
            }),
            tag => Err(DecodeError::UnknownTag {
                context: "Message",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, encode_frame};
    use cq::parse_instance;

    #[test]
    fn every_message_variant_round_trips() {
        let query = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
        let instance = parse_instance("R(a, b). R(b, c).").unwrap();
        let batch = ChunkBatch {
            round: 3,
            node: Node::numbered(1),
            chunk: instance.clone(),
        };
        let messages = [
            Message::Query(query.clone()),
            Message::Instance(instance.clone()),
            Message::EvalChunk {
                query: query.clone(),
                options: EvalOptions::default(),
                batch: batch.clone(),
                trace: TraceContext {
                    trace_id: 77,
                    parent_span: 12,
                    clock_us: 99_000,
                },
            },
            Message::ChunkResult {
                batch,
                eval_us: 1234,
            },
            Message::EvalDelta {
                query: query.clone(),
                options: EvalOptions {
                    join_strategy: cq::JoinStrategy::Multiway,
                    ..EvalOptions::default()
                },
                batch: DeltaBatch {
                    round: 4,
                    node: Node::numbered(2),
                    delta: instance.clone(),
                },
                trace: TraceContext::default(),
            },
            Message::DeltaResult {
                batch: DeltaBatch {
                    round: 4,
                    node: Node::numbered(2),
                    delta: instance.clone(),
                },
                eval_us: 99,
            },
            Message::Barrier { round: 7 },
            Message::BarrierAck { round: 7 },
            Message::Shutdown,
            Message::Hello { worker: 3 },
            Message::EvalResident {
                round: 0,
                node: Node::numbered(4),
                query: query.clone(),
                options: EvalOptions {
                    ordering: cq::JoinOrdering::Naive,
                    use_indexes: false,
                    ..EvalOptions::default()
                },
                trace: TraceContext {
                    trace_id: 5,
                    parent_span: 0,
                    clock_us: 1,
                },
            },
            Message::TraceFlush {
                events: vec![
                    TraceEvent {
                        name: "eval_chunk".to_string(),
                        kind: EventKind::Span,
                        ts_us: 10,
                        dur_us: 25,
                        pid: 0,
                        tid: 2,
                        id: 9,
                        parent: 4,
                        args: vec![("node".to_string(), "n1".to_string())],
                    },
                    TraceEvent {
                        name: "requeue".to_string(),
                        kind: EventKind::Instant,
                        ts_us: 40,
                        dur_us: 0,
                        pid: 3,
                        tid: 1,
                        id: 4,
                        parent: 0,
                        args: vec![],
                    },
                ],
            },
            Message::TraceFlush { events: vec![] },
        ];
        for message in &messages {
            let frame = encode_frame(message);
            let back: Message = decode_frame(&frame).unwrap();
            assert_eq!(&back, message, "{} failed to round-trip", message.kind());
        }
    }

    #[test]
    fn borrowed_eval_chunk_encodes_the_identical_frame() {
        let query = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
        let batch = ChunkBatch {
            round: 2,
            node: Node::numbered(3),
            chunk: parse_instance("R(a, b). R(b, c).").unwrap(),
        };
        let options = EvalOptions {
            join_strategy: cq::JoinStrategy::Multiway,
            ..EvalOptions::default()
        };
        let trace = TraceContext {
            trace_id: 3,
            parent_span: 8,
            clock_us: 500,
        };
        let borrowed = encode_frame(&EvalChunkRef {
            query: &query,
            options,
            batch: &batch,
            trace,
        });
        let owned = encode_frame(&Message::EvalChunk {
            query,
            options,
            batch,
            trace,
        });
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn borrowed_eval_delta_encodes_the_identical_frame() {
        let query = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
        let batch = DeltaBatch {
            round: 5,
            node: Node::numbered(1),
            delta: parse_instance("R(a, b).").unwrap(),
        };
        let options = EvalOptions::default();
        let trace = TraceContext::default();
        let borrowed = encode_frame(&EvalDeltaRef {
            query: &query,
            options,
            batch: &batch,
            trace,
        });
        let owned = encode_frame(&Message::EvalDelta {
            query,
            options,
            batch,
            trace,
        });
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn truncated_trace_flush_frames_error_without_panicking() {
        let flush = Message::TraceFlush {
            events: vec![TraceEvent {
                name: "eval_chunk".to_string(),
                kind: EventKind::Span,
                ts_us: 10,
                dur_us: 25,
                pid: 0,
                tid: 2,
                id: 9,
                parent: 4,
                args: vec![("node".to_string(), "n1".to_string())],
            }],
        };
        let frame = encode_frame(&flush);
        // Every proper prefix must decode to an error, never a panic.
        for cut in 0..frame.len() {
            assert!(
                decode_frame::<Message>(&frame[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
        // Corrupting the event-count varint to a huge value must be caught
        // by the remaining-bytes pre-check, not attempt a giant allocation.
        let mut enc = Encoder::new();
        enc.byte(super::TAG_TRACE_FLUSH);
        enc.usize(usize::MAX / 2);
        let body = enc.finish();
        let err = crate::codec::decode_body::<Message>(&body).unwrap_err();
        assert_eq!(err, DecodeError::Truncated);
    }

    #[test]
    fn unknown_message_tags_error() {
        let mut enc = Encoder::new();
        enc.byte(200);
        let body = enc.finish();
        let err = crate::codec::decode_body::<Message>(&body).unwrap_err();
        assert_eq!(
            err,
            DecodeError::UnknownTag {
                context: "Message",
                tag: 200
            }
        );
    }
}
