//! Chrome-trace-event export and trace summarization.
//!
//! A traced run ends with a flat `Vec<TraceEvent>` — coordinator spans
//! plus every worker's events merged onto one timeline. This module
//! turns that into the Chrome trace-event JSON format (loadable in
//! Perfetto / `chrome://tracing`), parses such files back, and computes
//! the rollups behind `pcq-analyze trace summarize`: per-phase
//! aggregates, per-process totals, and a per-round critical-path
//! breakdown.
//!
//! Mapping: spans become `"ph": "X"` (complete) events with `ts`/`dur`,
//! instants become `"ph": "i"` with thread scope, and each process lane
//! gets a `"ph": "M"` `process_name` metadata record (`coordinator`,
//! `worker 0`, …). Span ids and parent links ride in `args` so the file
//! round-trips losslessly through [`parse_chrome_trace`].

use std::collections::BTreeMap;
use std::fmt;

use obs::{EventKind, TraceEvent};

use crate::json::JsonValue;

/// The display label for a process lane: pid 0 is the coordinator,
/// pid `n + 1` is worker `n` (the coordinator stamps worker flushes).
pub fn process_label(pid: u32) -> String {
    if pid == 0 {
        "coordinator".to_string()
    } else {
        format!("worker {}", pid - 1)
    }
}

/// Renders recorded events as a Chrome trace-event document:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
pub fn chrome_trace(events: &[TraceEvent]) -> JsonValue {
    let mut out = Vec::with_capacity(events.len() + 4);

    // One process_name metadata record per lane, so Perfetto labels the
    // tracks "coordinator" / "worker N" instead of bare pids.
    let mut pids: Vec<u32> = events.iter().map(|e| e.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in pids {
        out.push(JsonValue::object([
            ("name", JsonValue::from("process_name")),
            ("ph", JsonValue::from("M")),
            ("pid", JsonValue::from(u64::from(pid))),
            ("tid", JsonValue::from(0u64)),
            (
                "args",
                JsonValue::object([("name", JsonValue::from(process_label(pid).as_str()))]),
            ),
        ]));
    }

    for event in events {
        let mut args = vec![
            ("id".to_string(), JsonValue::from(event.id.to_string())),
            (
                "parent".to_string(),
                JsonValue::from(event.parent.to_string()),
            ),
        ];
        for (key, value) in &event.args {
            args.push((key.clone(), JsonValue::from(value.as_str())));
        }
        let mut fields = vec![
            ("name".to_string(), JsonValue::from(event.name.as_str())),
            ("cat".to_string(), JsonValue::from("pcq")),
            ("ts".to_string(), JsonValue::from(event.ts_us)),
            ("pid".to_string(), JsonValue::from(u64::from(event.pid))),
            ("tid".to_string(), JsonValue::from(event.tid)),
        ];
        match event.kind {
            EventKind::Span => {
                fields.push(("ph".to_string(), JsonValue::from("X")));
                fields.push(("dur".to_string(), JsonValue::from(event.dur_us)));
            }
            EventKind::Instant => {
                fields.push(("ph".to_string(), JsonValue::from("i")));
                fields.push(("s".to_string(), JsonValue::from("t")));
            }
        }
        fields.push(("args".to_string(), JsonValue::Object(args)));
        out.push(JsonValue::Object(fields));
    }

    JsonValue::object([
        ("traceEvents", JsonValue::Array(out)),
        ("displayTimeUnit", JsonValue::from("ms")),
    ])
}

/// Parses a Chrome trace-event document (as written by [`chrome_trace`])
/// back into events. Metadata records are dropped; unknown phase types
/// are an error so corrupted files fail loudly rather than summarize
/// silently wrong.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    events_from_doc(&doc)
}

/// The `droppedEvents` count a trace document carries when the recording
/// session overflowed its per-thread buffers (0 when absent — complete
/// timelines omit the field).
pub fn dropped_events_field(doc: &JsonValue) -> u64 {
    doc.get("droppedEvents")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0)
}

/// Extracts events from an already-parsed trace document — the
/// building block behind [`parse_chrome_trace`] for callers that also
/// need document-level fields like `droppedEvents`.
pub fn events_from_doc(doc: &JsonValue) -> Result<Vec<TraceEvent>, String> {
    let items = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;
    let mut events = Vec::with_capacity(items.len());
    for (index, item) in items.iter().enumerate() {
        let field = |key: &str| {
            item.get(key)
                .ok_or_else(|| format!("event {index}: missing \"{key}\""))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {index}: \"ph\" is not a string"))?;
        let kind = match ph {
            "M" => continue,
            "X" => EventKind::Span,
            "i" | "I" => EventKind::Instant,
            other => return Err(format!("event {index}: unsupported phase {other:?}")),
        };
        let uint = |key: &str| -> Result<u64, String> {
            field(key)?
                .as_u64()
                .ok_or_else(|| format!("event {index}: \"{key}\" is not an integer"))
        };
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {index}: \"name\" is not a string"))?
            .to_string();
        let mut id = 0u64;
        let mut parent = 0u64;
        let mut args = Vec::new();
        if let Some(JsonValue::Object(pairs)) = item.get("args") {
            for (key, value) in pairs {
                let text = value
                    .as_str()
                    .ok_or_else(|| format!("event {index}: arg \"{key}\" is not a string"))?;
                match key.as_str() {
                    "id" => {
                        id = text
                            .parse()
                            .map_err(|_| format!("event {index}: bad span id {text:?}"))?
                    }
                    "parent" => {
                        parent = text
                            .parse()
                            .map_err(|_| format!("event {index}: bad parent id {text:?}"))?
                    }
                    _ => args.push((key.clone(), text.to_string())),
                }
            }
        }
        events.push(TraceEvent {
            name,
            kind,
            ts_us: uint("ts")?,
            dur_us: match kind {
                EventKind::Span => uint("dur")?,
                EventKind::Instant => 0,
            },
            pid: u32::try_from(uint("pid")?)
                .map_err(|_| format!("event {index}: pid out of range"))?,
            tid: uint("tid")?,
            id,
            parent,
            args,
        });
    }
    Ok(events)
}

/// Structural invariants every merged timeline must satisfy: each
/// non-root parent reference resolves to a recorded span, and within a
/// single process lane children start no earlier and end no later than
/// their parent. Cross-process nesting is exempt from the temporal check
/// because worker clocks are aligned to the coordinator's only
/// approximately (via the offset shipped in the trace context).
pub fn check_well_formed(events: &[TraceEvent]) -> Result<(), String> {
    let spans: BTreeMap<u64, &TraceEvent> = events
        .iter()
        .filter(|e| e.kind == EventKind::Span)
        .map(|e| (e.id, e))
        .collect();
    for event in events {
        if event.parent == 0 {
            continue;
        }
        let parent = spans.get(&event.parent).ok_or_else(|| {
            format!(
                "{} (id {}) references unknown parent span {}",
                event.name, event.id, event.parent
            )
        })?;
        if parent.pid != event.pid {
            continue;
        }
        let parent_end = parent.ts_us + parent.dur_us;
        let end = event.ts_us + event.dur_us;
        if event.ts_us < parent.ts_us || end > parent_end {
            return Err(format!(
                "{} (id {}, {}..{}) escapes parent {} (id {}, {}..{})",
                event.name,
                event.id,
                event.ts_us,
                end,
                parent.name,
                parent.id,
                parent.ts_us,
                parent_end
            ));
        }
    }
    Ok(())
}

/// Aggregate statistics for one span name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of spans with this name.
    pub count: u64,
    /// Summed duration across them, microseconds.
    pub total_us: u64,
    /// Shortest single span.
    pub min_us: u64,
    /// Longest single span.
    pub max_us: u64,
}

/// Aggregate statistics for one process lane.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Spans recorded on this lane.
    pub spans: u64,
    /// Instants recorded on this lane.
    pub instants: u64,
    /// Summed span duration (inclusive — nested spans both count).
    pub total_span_us: u64,
    /// Wall-clock extent: last event end minus first event start.
    pub wall_us: u64,
}

/// One engine round on the coordinator's critical path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Round number (from the span's `round` argument, else ordinal).
    pub round: u64,
    /// The round span's duration.
    pub dur_us: u64,
}

/// The rollups behind `pcq-analyze trace summarize`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events (spans + instants).
    pub events: u64,
    /// Per-span-name aggregates, ordered by name.
    pub phases: BTreeMap<String, PhaseStats>,
    /// Per-instant-name counts, ordered by name.
    pub instants: BTreeMap<String, u64>,
    /// Per-process-lane aggregates, keyed by pid.
    pub processes: BTreeMap<u32, ProcessStats>,
    /// Coordinator `eval_round` / `one_round` spans in timeline order:
    /// the round-by-round critical path.
    pub rounds: Vec<RoundStats>,
    /// Events the recording session dropped (per-thread buffer
    /// overflow): when nonzero the timeline is incomplete and every
    /// rollup above is a lower bound.
    pub dropped_events: u64,
}

impl TraceSummary {
    /// Computes the rollups from a merged timeline.
    pub fn from_events(events: &[TraceEvent]) -> TraceSummary {
        let mut summary = TraceSummary {
            events: events.len() as u64,
            ..TraceSummary::default()
        };
        let mut lanes: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for event in events {
            let process = summary.processes.entry(event.pid).or_default();
            let lane = lanes.entry(event.pid).or_insert((u64::MAX, 0));
            lane.0 = lane.0.min(event.ts_us);
            lane.1 = lane.1.max(event.ts_us + event.dur_us);
            match event.kind {
                EventKind::Span => {
                    process.spans += 1;
                    process.total_span_us += event.dur_us;
                    let phase = summary.phases.entry(event.name.clone()).or_default();
                    if phase.count == 0 {
                        phase.min_us = event.dur_us;
                    }
                    phase.count += 1;
                    phase.total_us += event.dur_us;
                    phase.min_us = phase.min_us.min(event.dur_us);
                    phase.max_us = phase.max_us.max(event.dur_us);
                    if event.pid == 0 && (event.name == "eval_round" || event.name == "one_round") {
                        let round = event
                            .args
                            .iter()
                            .find(|(k, _)| k == "round")
                            .and_then(|(_, v)| v.parse().ok())
                            .unwrap_or(summary.rounds.len() as u64);
                        summary.rounds.push(RoundStats {
                            round,
                            dur_us: event.dur_us,
                        });
                    }
                }
                EventKind::Instant => {
                    process.instants += 1;
                    *summary.instants.entry(event.name.clone()).or_default() += 1;
                }
            }
        }
        for (pid, (start, end)) in lanes {
            if let Some(process) = summary.processes.get_mut(&pid) {
                process.wall_us = end.saturating_sub(start);
            }
        }
        summary
    }

    /// Renders the summary as a JSON document (for `--json`).
    pub fn to_json(&self) -> JsonValue {
        let phases = self
            .phases
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    JsonValue::object([
                        ("count", JsonValue::from(s.count)),
                        ("total_us", JsonValue::from(s.total_us)),
                        ("min_us", JsonValue::from(s.min_us)),
                        ("max_us", JsonValue::from(s.max_us)),
                    ]),
                )
            })
            .collect();
        let instants = self
            .instants
            .iter()
            .map(|(name, count)| (name.clone(), JsonValue::from(*count)))
            .collect();
        let processes = self
            .processes
            .iter()
            .map(|(pid, s)| {
                (
                    process_label(*pid),
                    JsonValue::object([
                        ("spans", JsonValue::from(s.spans)),
                        ("instants", JsonValue::from(s.instants)),
                        ("total_span_us", JsonValue::from(s.total_span_us)),
                        ("wall_us", JsonValue::from(s.wall_us)),
                    ]),
                )
            })
            .collect();
        let rounds = self
            .rounds
            .iter()
            .map(|r| {
                JsonValue::object([
                    ("round", JsonValue::from(r.round)),
                    ("dur_us", JsonValue::from(r.dur_us)),
                ])
            })
            .collect();
        JsonValue::object([
            ("events", JsonValue::from(self.events)),
            ("dropped_events", JsonValue::from(self.dropped_events)),
            ("phases", JsonValue::Object(phases)),
            ("instants", JsonValue::Object(instants)),
            ("processes", JsonValue::Object(processes)),
            ("rounds", JsonValue::Array(rounds)),
        ])
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "events: {}", self.events)?;
        if self.dropped_events > 0 {
            writeln!(
                f,
                "WARNING: {} events dropped (per-thread buffer full) — totals are lower bounds",
                self.dropped_events
            )?;
        }
        if !self.processes.is_empty() {
            writeln!(f, "\nprocesses:")?;
            for (pid, s) in &self.processes {
                writeln!(
                    f,
                    "  {:<14} {:>6} spans  {:>6} instants  busy {:>10}  wall {:>10}",
                    process_label(*pid),
                    s.spans,
                    s.instants,
                    format_us(s.total_span_us),
                    format_us(s.wall_us),
                )?;
            }
        }
        if !self.phases.is_empty() {
            writeln!(f, "\nphases (by total time):")?;
            let mut phases: Vec<_> = self.phases.iter().collect();
            phases.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));
            for (name, s) in phases {
                writeln!(
                    f,
                    "  {:<22} {:>6}x  total {:>10}  min {:>10}  max {:>10}",
                    name,
                    s.count,
                    format_us(s.total_us),
                    format_us(s.min_us),
                    format_us(s.max_us),
                )?;
            }
        }
        if !self.instants.is_empty() {
            writeln!(f, "\ninstants:")?;
            for (name, count) in &self.instants {
                writeln!(f, "  {name:<22} {count:>6}x")?;
            }
        }
        if !self.rounds.is_empty() {
            let total: u64 = self.rounds.iter().map(|r| r.dur_us).sum();
            writeln!(f, "\nrounds (critical path, {} total):", format_us(total))?;
            for r in &self.rounds {
                let share = if total == 0 {
                    0.0
                } else {
                    100.0 * r.dur_us as f64 / total as f64
                };
                writeln!(
                    f,
                    "  round {:<4} {:>10}  {:>5.1}%",
                    r.round,
                    format_us(r.dur_us),
                    share
                )?;
            }
        }
        Ok(())
    }
}

/// Microseconds as a human-readable duration (`428us`, `1.204ms`, `3.50s`).
fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.3}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, ts: u64, dur: u64, pid: u32, id: u64, parent: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            kind: EventKind::Span,
            ts_us: ts,
            dur_us: dur,
            pid,
            tid: 1,
            id,
            parent,
            args: vec![("round".to_string(), "2".to_string())],
        }
    }

    fn instant(name: &str, ts: u64, pid: u32, parent: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            kind: EventKind::Instant,
            ts_us: ts,
            dur_us: 0,
            pid,
            tid: 1,
            id: parent,
            parent,
            args: Vec::new(),
        }
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            span("run", 0, 100, 0, 1, 0),
            span("eval_round", 10, 60, 0, 2, 1),
            span("worker_eval_chunk", 20, 30, 1, (1 << 40) | 1, 2),
            instant("requeue", 50, 0, 2),
        ]
    }

    #[test]
    fn export_round_trips_through_parse() {
        let events = sample();
        let doc = chrome_trace(&events);
        let parsed = parse_chrome_trace(&doc.to_string()).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn export_labels_every_process_lane() {
        let doc = chrome_trace(&sample()).to_string();
        assert!(doc.contains("\"coordinator\""));
        assert!(doc.contains("\"worker 0\""));
        assert!(doc.contains("\"displayTimeUnit\":\"ms\""));
    }

    #[test]
    fn well_formedness_accepts_nesting_and_cross_process_links() {
        check_well_formed(&sample()).unwrap();
    }

    #[test]
    fn well_formedness_rejects_dangling_parent() {
        let mut events = sample();
        events[1].parent = 99;
        let err = check_well_formed(&events).unwrap_err();
        assert!(err.contains("unknown parent"), "{err}");
    }

    #[test]
    fn well_formedness_rejects_child_escaping_parent_in_same_process() {
        let mut events = sample();
        events[1].dur_us = 1_000; // ends after the enclosing "run" span
        let err = check_well_formed(&events).unwrap_err();
        assert!(err.contains("escapes parent"), "{err}");
    }

    #[test]
    fn summary_rolls_up_phases_processes_and_rounds() {
        let summary = TraceSummary::from_events(&sample());
        assert_eq!(summary.events, 4);
        assert_eq!(summary.phases["eval_round"].count, 1);
        assert_eq!(summary.phases["eval_round"].total_us, 60);
        assert_eq!(summary.instants["requeue"], 1);
        assert_eq!(summary.processes[&0].spans, 2);
        assert_eq!(summary.processes[&0].wall_us, 100);
        assert_eq!(summary.processes[&1].spans, 1);
        assert_eq!(
            summary.rounds,
            vec![RoundStats {
                round: 2,
                dur_us: 60
            }]
        );
        // json rendering parses back
        JsonValue::parse(&summary.to_json().to_string()).unwrap();
    }

    #[test]
    fn dropped_events_round_trip_through_the_document() {
        let mut doc = chrome_trace(&sample());
        assert_eq!(dropped_events_field(&doc), 0);
        doc.push("droppedEvents", JsonValue::from(7u64));
        let reparsed = JsonValue::parse(&doc.to_string()).unwrap();
        assert_eq!(dropped_events_field(&reparsed), 7);
        let mut summary = TraceSummary::from_events(&events_from_doc(&reparsed).unwrap());
        summary.dropped_events = dropped_events_field(&reparsed);
        assert!(summary.to_string().contains("WARNING: 7 events dropped"));
        let json = summary.to_json();
        assert_eq!(
            json.get("dropped_events").and_then(JsonValue::as_u64),
            Some(7)
        );
    }

    #[test]
    fn empty_and_degenerate_timelines_summarize_cleanly() {
        // A trace with no events at all.
        let empty = parse_chrome_trace("{\"traceEvents\":[]}").unwrap();
        let summary = TraceSummary::from_events(&empty);
        assert_eq!(summary.events, 0);
        assert!(summary.to_string().contains("events: 0"));
        // Zero-duration rounds must not divide by zero in the share
        // column, and a process lane with only instants (zero spans)
        // must render.
        let degenerate = vec![
            span("eval_round", 0, 0, 0, 1, 0),
            instant("requeue", 0, 1, 0),
        ];
        let summary = TraceSummary::from_events(&degenerate);
        let text = summary.to_string();
        assert!(text.contains("round"), "{text}");
        assert_eq!(summary.processes[&1].spans, 0);
        JsonValue::parse(&summary.to_json().to_string()).unwrap();
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{}").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\": [{\"ph\": \"X\"}]}").is_err());
        assert!(
            parse_chrome_trace("{\"traceEvents\": [{\"ph\": \"?\", \"name\": \"x\"}]}").is_err()
        );
    }
}
