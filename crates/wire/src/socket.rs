//! The socket transport: the same worker protocol as
//! [`ProcessTransport`](crate::ProcessTransport), carried over TCP instead
//! of stdio pipes — the step from a simulated cluster to workers that can
//! live on other machines.
//!
//! The coordinator binds a listener; each worker connects (spawned locally
//! with `--connect`, or started by hand anywhere the address is reachable)
//! and introduces itself with a `Hello { worker }` frame echoing the slot
//! token it was handed:
//!
//! ```text
//! coordinator (listener)              worker k  (pcq-analyze worker --connect addr --token k)
//!       ◀───────────  connect
//!       ◀───────────  Hello{worker: k}
//!   EvalChunk…  ───▶                   (then exactly the stdio protocol,
//!       ◀───────────  ChunkResult…      pipelined under the same driver)
//! ```
//!
//! The `PCQW` frames are self-delimiting, so they concatenate on the
//! stream without any extra record layer; `TCP_NODELAY` keeps the small
//! control frames from stalling behind Nagle's algorithm. After the
//! handshake, rounds run on the shared pipelined driver
//! (see [`crate::driver`]) — the socket transport gets the same in-flight
//! window, byte accounting, and worker-death requeue as the process
//! transport, byte-identically.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use cq::{ConjunctiveQuery, EvalOptions, Instance};
use distribution::{Node, NodeResult, Transport, TransportError};

use crate::driver::{Endpoint, PipelinedCore, StderrTail};
use crate::frame::{read_frame, write_frame};
use crate::message::Message;
use crate::process::run_worker_slowed;

/// How long the coordinator waits for spawned workers to connect back.
const SPAWN_ACCEPT_DEADLINE: Duration = Duration::from_secs(10);

/// How long [`SocketTransport::listen`] waits for external workers.
const LISTEN_ACCEPT_DEADLINE: Duration = Duration::from_secs(60);

/// How long a connected socket may dawdle over its `Hello` frame.
const HELLO_TIMEOUT: Duration = Duration::from_secs(5);

/// A [`Transport`] whose workers evaluate on the far end of TCP
/// connections (see the module docs for the handshake).
pub struct SocketTransport {
    core: PipelinedCore,
}

impl SocketTransport {
    /// Spawns `workers` local subprocesses of this same executable
    /// re-invoked as `worker --connect <addr> --token <i>` against an
    /// ephemeral loopback listener — the socket-transport analogue of
    /// [`ProcessTransport::spawn`](crate::ProcessTransport::spawn).
    pub fn spawn(workers: usize) -> Result<SocketTransport, TransportError> {
        let exe = std::env::current_exe()
            .map_err(|e| TransportError::Io(format!("cannot find current executable: {e}")))?;
        SocketTransport::spawn_command(exe, &["worker".to_string()], workers)
    }

    /// Spawns `workers` local subprocesses of an explicit `program` with
    /// `args` (each gets `--connect`/`--token` appended).
    pub fn spawn_command(
        program: PathBuf,
        args: &[String],
        workers: usize,
    ) -> Result<SocketTransport, TransportError> {
        let workers = workers.max(1);
        let per_worker: Vec<Vec<String>> = (0..workers).map(|_| args.to_vec()).collect();
        SocketTransport::spawn_commands(program, &per_worker)
    }

    /// Spawns one subprocess per argument list (each gets
    /// `--connect`/`--token` appended), letting individual workers carry
    /// extra flags — fault-injection tests give one worker
    /// `--fail-after N`.
    pub fn spawn_commands(
        program: PathBuf,
        per_worker_args: &[Vec<String>],
    ) -> Result<SocketTransport, TransportError> {
        let listener = bind("127.0.0.1:0")?;
        let addr = local_addr(&listener)?;
        let mut children = Vec::with_capacity(per_worker_args.len());
        let mut tails = Vec::with_capacity(per_worker_args.len());
        for (token, args) in per_worker_args.iter().enumerate() {
            let mut child = Command::new(&program)
                .args(args)
                .arg("--connect")
                .arg(addr.to_string())
                .arg("--token")
                .arg(token.to_string())
                .stderr(Stdio::piped())
                .spawn()
                .map_err(|e| {
                    TransportError::Io(format!("cannot spawn worker {}: {e}", program.display()))
                })?;
            // Same crash-diagnostics capture as the process transport: a
            // dead worker's stderr tail rides along on the round error.
            tails.push(child.stderr.take().map(StderrTail::capture));
            children.push(Some(child));
        }
        let endpoints = accept_workers(
            &listener,
            per_worker_args.len(),
            SPAWN_ACCEPT_DEADLINE,
            Some(&mut children),
        )?;
        let mut core = PipelinedCore::new(endpoints, children);
        core.set_stderr_tails(tails);
        Ok(SocketTransport { core })
    }

    /// Binds `addr` and waits (up to a minute) for `workers` external
    /// workers to connect and introduce themselves — each must be started
    /// elsewhere as `pcq-analyze worker --connect <addr> --token <i>` with
    /// distinct tokens `0..workers`. The coordinator does not own their
    /// processes; a dead connection is handled by the requeue path alone.
    pub fn listen(
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> Result<SocketTransport, TransportError> {
        let workers = workers.max(1);
        let listener = bind(addr)?;
        let endpoints = accept_workers(&listener, workers, LISTEN_ACCEPT_DEADLINE, None)?;
        let children = (0..workers).map(|_| None).collect();
        Ok(SocketTransport {
            core: PipelinedCore::new(endpoints, children),
        })
    }

    /// Number of workers in the pool.
    pub fn worker_count(&self) -> usize {
        self.core.worker_count()
    }

    /// Workers whose connections are still live.
    pub fn alive_workers(&self) -> usize {
        self.core.alive_workers()
    }

    /// Sets the pipelining window (jobs in flight per worker); 1 restores
    /// write-one-read-one lock step.
    pub fn pipeline_window(mut self, window: usize) -> SocketTransport {
        self.core.set_window(window);
        self
    }

    /// Enables (default) or disables mid-round worker-failure recovery.
    pub fn fault_tolerance(mut self, enabled: bool) -> SocketTransport {
        self.core.set_fault_tolerance(enabled);
        self
    }

    /// Bounds how long `Drop` waits for a spawned worker to exit after
    /// `Shutdown` before killing it (default 5 s).
    pub fn shutdown_grace(mut self, grace: Duration) -> SocketTransport {
        self.core.set_shutdown_grace(grace);
        self
    }

    /// The driver's metrics registry: `driver_requeues`, `worker_deaths`
    /// and `state_rebuilds` accumulate here over the transport's lifetime.
    pub fn metrics_registry(&self) -> std::sync::Arc<obs::Registry> {
        self.core.registry()
    }
}

fn bind(addr: impl ToSocketAddrs) -> Result<TcpListener, TransportError> {
    TcpListener::bind(addr).map_err(|e| TransportError::Io(format!("cannot bind listener: {e}")))
}

fn local_addr(listener: &TcpListener) -> Result<SocketAddr, TransportError> {
    listener
        .local_addr()
        .map_err(|e| TransportError::Io(format!("cannot read listener address: {e}")))
}

/// Accepts connections until every worker slot `0..expected` has
/// introduced itself with a valid `Hello`, or the deadline passes. With
/// `children`, a worker that exits before connecting is reported as such
/// (instead of an opaque timeout).
fn accept_workers(
    listener: &TcpListener,
    expected: usize,
    deadline: Duration,
    mut children: Option<&mut Vec<Option<Child>>>,
) -> Result<Vec<Endpoint>, TransportError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| TransportError::Io(format!("cannot poll listener: {e}")))?;
    let deadline = Instant::now() + deadline;
    let mut slots: Vec<Option<Endpoint>> = (0..expected).map(|_| None).collect();
    let mut connected = 0usize;
    while connected < expected {
        match listener.accept() {
            Ok((stream, _)) => {
                let token = handshake(&stream)?;
                if token >= expected as u64 {
                    return Err(TransportError::Protocol(format!(
                        "worker introduced itself with token {token}, expected 0..{expected}"
                    )));
                }
                let slot = &mut slots[token as usize];
                if slot.is_some() {
                    return Err(TransportError::Protocol(format!(
                        "two workers claimed token {token}"
                    )));
                }
                let writer = stream
                    .try_clone()
                    .map_err(|e| TransportError::Io(format!("cannot clone worker stream: {e}")))?;
                *slot = Some(Endpoint::new(writer, stream));
                connected += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if let Some(children) = children.as_deref_mut() {
                    for (i, child) in children.iter_mut().enumerate() {
                        let exited = child
                            .as_mut()
                            .is_some_and(|c| matches!(c.try_wait(), Ok(Some(_))));
                        if exited && slots[i].is_none() {
                            return Err(TransportError::Io(format!(
                                "worker {i} exited before connecting back"
                            )));
                        }
                    }
                }
                if Instant::now() >= deadline {
                    return Err(TransportError::Io(format!(
                        "only {connected} of {expected} workers connected before the deadline"
                    )));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(TransportError::Io(format!("accept failed: {e}"))),
        }
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect())
}

/// Reads and validates the `Hello` frame off a fresh connection, returning
/// the worker's token. Configures the stream (blocking, `TCP_NODELAY`) on
/// the way.
fn handshake(stream: &TcpStream) -> Result<u64, TransportError> {
    stream
        .set_nonblocking(false)
        .map_err(|e| TransportError::Io(format!("cannot configure worker stream: {e}")))?;
    stream
        .set_nodelay(true)
        .map_err(|e| TransportError::Io(format!("cannot configure worker stream: {e}")))?;
    stream
        .set_read_timeout(Some(HELLO_TIMEOUT))
        .map_err(|e| TransportError::Io(format!("cannot configure worker stream: {e}")))?;
    let mut reader = stream;
    let hello = match read_frame::<Message>(&mut reader) {
        Ok(Some(Message::Hello { worker })) => worker,
        Ok(Some(other)) => {
            return Err(TransportError::Protocol(format!(
                "expected hello as a connection's first frame, got {}",
                other.kind()
            )))
        }
        Ok(None) => {
            return Err(TransportError::Io(
                "worker closed its connection before saying hello".to_string(),
            ))
        }
        Err(e) => return Err(TransportError::Protocol(format!("bad hello frame: {e}"))),
    };
    stream
        .set_read_timeout(None)
        .map_err(|e| TransportError::Io(format!("cannot configure worker stream: {e}")))?;
    Ok(hello)
}

impl Transport for SocketTransport {
    fn begin_round(
        &mut self,
        round: usize,
        query: &ConjunctiveQuery,
        options: EvalOptions,
    ) -> Result<(), TransportError> {
        self.core.begin_round(round, query, options)
    }

    fn send_chunk(&mut self, node: Node, chunk: Instance) -> Result<(), TransportError> {
        self.core.send_chunk(node, chunk)
    }

    fn send_delta(&mut self, node: Node, delta: Instance) -> Result<(), TransportError> {
        self.core.send_delta(node, delta)
    }

    fn send_resident(&mut self, node: Node) -> Result<(), TransportError> {
        self.core.send_resident(node)
    }

    fn barrier(&mut self) -> Result<(), TransportError> {
        self.core.barrier()
    }

    fn recv_chunk(&mut self, node: Node) -> Result<NodeResult, TransportError> {
        self.core.recv(node)
    }

    fn recv_delta(&mut self, node: Node) -> Result<NodeResult, TransportError> {
        self.core.recv(node)
    }

    fn take_bytes_shipped(&mut self) -> u64 {
        self.core.take_bytes_shipped()
    }

    fn parallelism(&self) -> usize {
        self.core.parallelism()
    }
}

/// The worker side of the socket transport: connects to the coordinator at
/// `addr`, introduces itself with `Hello { worker: token }`, then runs the
/// ordinary worker loop over the connection (see
/// [`run_worker`](crate::run_worker)). `fail_after` injects a
/// mid-round death after that many eval jobs, for fault-tolerance tests;
/// `slow_eval_us` injects per-eval latency, for `trace diff` fixtures.
/// Backs `pcq-analyze worker --connect addr --token k`.
pub fn run_worker_connect(
    addr: &str,
    token: u64,
    fail_after: Option<u64>,
    slow_eval_us: u64,
) -> Result<(), String> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to coordinator at {addr}: {e}"))?;
    stream
        .set_nodelay(true)
        .map_err(|e| format!("cannot configure stream: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    write_frame(&mut writer, &Message::Hello { worker: token })
        .map_err(|e| format!("cannot send hello: {e}"))?;
    run_worker_slowed(stream, writer, fail_after, slow_eval_us)
}
