//! Property-based round-trip laws of the wire subsystem:
//!
//! * binary: `decode(encode(x)) == x` for random facts, instances,
//!   queries, chunk batches and scenarios, through both the bare codec
//!   body and the framed byte stream,
//! * textual: `parse(print(s)) == s` for random scenarios,
//! * robustness: corrupted and truncated frames return errors — decoding
//!   never panics, whatever the bytes.

use cq::{Atom, ConjunctiveQuery, Fact, Instance, Value, Variable};
use distribution::Node;
use proptest::prelude::*;
use wire::{
    decode_body, decode_frame, encode_body, encode_frame, ChunkBatch, DeltaBatch, ExplicitSpec,
    Message, NetworkSpec, PolicySpec, Scenario,
};

// ---------------------------------------------------------------- strategies

/// Random facts over a pool of relations and values, mixed arities 0..=3.
fn fact_strategy() -> impl Strategy<Value = Fact> {
    (0..4usize, proptest::collection::vec(0..6usize, 0..4)).prop_map(|(rel, values)| {
        Fact::new(
            format!("R{rel}").as_str(),
            values.into_iter().map(|v| Value::indexed("d", v)).collect(),
        )
    })
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    proptest::collection::vec(fact_strategy(), 0..30).prop_map(Instance::from_facts)
}

/// Random safe queries over binary relations (same shape as the cq
/// property suite's generator).
fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = (0..3usize, 0..4usize, 0..4usize);
    (proptest::collection::vec(atom, 1..5), 0..3usize).prop_map(|(atoms, head_arity)| {
        let var = |i: usize| Variable::indexed("x", i);
        let body: Vec<Atom> = atoms
            .iter()
            .map(|&(r, a, b)| Atom::new(format!("R{r}").as_str(), vec![var(a), var(b)]))
            .collect();
        let mut body_vars = Vec::new();
        for atom in &body {
            for &v in &atom.args {
                if !body_vars.contains(&v) {
                    body_vars.push(v);
                }
            }
        }
        let head_vars: Vec<Variable> = body_vars.into_iter().take(head_arity).collect();
        ConjunctiveQuery::new(Atom::new("T", head_vars), body).expect("generated query is safe")
    })
}

fn policy_spec_strategy() -> impl Strategy<Value = PolicySpec> {
    (
        0..5usize,
        1..5usize,
        proptest::collection::vec(1..4usize, 1..4),
    )
        .prop_map(|(kind, n, buckets)| match kind {
            0 => PolicySpec::Broadcast(NetworkSpec::Size(n)),
            1 => PolicySpec::RoundRobin(NetworkSpec::Named(
                (0..n)
                    .map(|i| cq::Symbol::new(&format!("host{i}")))
                    .collect(),
            )),
            2 => PolicySpec::Hash { buckets: n },
            3 => PolicySpec::Hypercube { buckets: vec![n] },
            _ => PolicySpec::Hypercube { buckets },
        })
}

/// A random explicit per-fact policy stanza: a few nodes with small fact
/// sets, optionally a default node list.
fn explicit_spec_strategy() -> impl Strategy<Value = ExplicitSpec> {
    (
        proptest::collection::vec(
            (0..4usize, proptest::collection::vec(fact_strategy(), 0..6)),
            1..4,
        ),
        proptest::collection::vec(0..4usize, 0..3),
    )
        .prop_map(|(entries, default)| {
            let mut assignments = std::collections::BTreeMap::new();
            for (n, facts) in entries {
                assignments
                    .entry(cq::Symbol::new(&format!("node{n}")))
                    .or_insert_with(Instance::new)
                    .extend(facts);
            }
            ExplicitSpec {
                assignments,
                default: default
                    .into_iter()
                    .map(|n| cq::Symbol::new(&format!("node{n}")))
                    .collect(),
            }
        })
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec(query_strategy(), 1..4),
        instance_strategy(),
        proptest::collection::vec(policy_spec_strategy(), 1..4),
        1..9usize,
        0..2usize,
        // 0 = no policy stanza; 1 = stanza present but unused;
        // 2 = stanza present and an `explicit` entry in the schedule
        (0..3usize, explicit_spec_strategy()),
    )
        .prop_map(
            |(queries, instance, mut schedule, rounds, feedback, (policy_mode, spec))| {
                let policy = (policy_mode > 0).then_some(spec);
                // an `explicit` schedule entry is only well-formed alongside
                // a policy stanza
                if policy_mode == 2 {
                    schedule.push(PolicySpec::Explicit);
                }
                Scenario {
                    // feedback must be a relation the printer/parser can
                    // round-trip; any body relation name works (the parser
                    // does not re-validate against the query, the CLI does).
                    feedback: (feedback == 1).then(|| queries[0].body()[0].relation),
                    queries,
                    instance,
                    policy,
                    schedule,
                    rounds,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn facts_round_trip_through_the_codec(fact in fact_strategy()) {
        prop_assert_eq!(decode_body::<Fact>(&encode_body(&fact)).unwrap(), fact.clone());
        prop_assert_eq!(decode_frame::<Fact>(&encode_frame(&fact)).unwrap(), fact);
    }

    #[test]
    fn instances_round_trip_through_the_codec(instance in instance_strategy()) {
        let framed = encode_frame(&instance);
        prop_assert_eq!(decode_frame::<Instance>(&framed).unwrap(), instance);
    }

    #[test]
    fn queries_round_trip_through_the_codec(query in query_strategy()) {
        let framed = encode_frame(&query);
        prop_assert_eq!(decode_frame::<ConjunctiveQuery>(&framed).unwrap(), query);
    }

    #[test]
    fn chunk_batches_round_trip_through_the_codec(
        instance in instance_strategy(),
        round in 0..5u64,
        node in 0..8usize,
    ) {
        let batch = ChunkBatch { round, node: Node::numbered(node), chunk: instance };
        let framed = encode_frame(&batch);
        prop_assert_eq!(decode_frame::<ChunkBatch>(&framed).unwrap(), batch);
    }

    #[test]
    fn delta_batches_round_trip_through_the_codec(
        instance in instance_strategy(),
        round in 0..5u64,
        node in 0..8usize,
    ) {
        let batch = DeltaBatch { round, node: Node::numbered(node), delta: instance };
        let framed = encode_frame(&batch);
        prop_assert_eq!(decode_frame::<DeltaBatch>(&framed).unwrap(), batch.clone());
        // and as full protocol messages
        let message = Message::DeltaResult { batch, eval_us: 7 };
        prop_assert_eq!(decode_frame::<Message>(&encode_frame(&message)).unwrap(), message);
    }

    #[test]
    fn scenarios_round_trip_through_both_formats(scenario in scenario_strategy()) {
        // textual: the pretty-printer is the parser's exact inverse
        let text = scenario.to_string();
        let reparsed = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("printed scenario failed to parse: {e}\n{text}"));
        prop_assert_eq!(&reparsed, &scenario);

        // binary: framed bytes decode to an equal value
        let framed = encode_frame(&Message::Scenario(scenario.clone()));
        prop_assert_eq!(
            decode_frame::<Message>(&framed).unwrap(),
            Message::Scenario(scenario)
        );
    }

    #[test]
    fn truncated_frames_error_and_never_panic(
        instance in instance_strategy(),
        cut_permille in 0..1000usize,
    ) {
        let framed = encode_frame(&Message::Instance(instance));
        let cut = cut_permille * framed.len() / 1000;
        prop_assert!(cut < framed.len());
        prop_assert!(decode_frame::<Message>(&framed[..cut]).is_err());
    }

    #[test]
    fn corrupted_frames_never_panic(
        query in query_strategy(),
        instance in instance_strategy(),
        byte in 0..4096usize,
        flip in 1..255u8,
    ) {
        // Flip one byte anywhere in the frame: the decoder must return
        // *something* (an error, or — e.g. for a flipped value index that
        // stays in range — a structurally valid other message) without
        // panicking or over-allocating.
        let batch = ChunkBatch { round: 0, node: Node::numbered(0), chunk: instance };
        let options = cq::EvalOptions::default();
        let trace = wire::TraceContext::default();
        let mut framed = encode_frame(&Message::EvalChunk { query, options, batch, trace });
        let at = byte % framed.len();
        framed[at] ^= flip;
        let _ = decode_frame::<Message>(&framed);
    }
}

#[test]
fn arbitrary_garbage_is_rejected() {
    for garbage in [
        &b""[..],
        b"PCQ",
        b"PCQX\x01\x00",
        b"not a frame at all",
        b"PCQW",
        b"PCQW\x01",
        b"PCQW\x02\x00",
    ] {
        assert!(
            decode_frame::<Message>(garbage).is_err(),
            "{garbage:?} must not decode"
        );
    }
}
