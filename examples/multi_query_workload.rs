//! Reusing one data distribution for a workload of queries.
//!
//! Section 4 of the paper motivates *transferability*: when several queries
//! are evaluated in sequence, reshuffling the data for each of them is
//! wasteful; if parallel-correctness transfers from `Q` to `Q'`, any
//! distribution that is parallel-correct for `Q` can be reused for `Q'`.
//!
//! This example takes a small analytical workload over a social-network-like
//! schema, computes the full transfer matrix, reports which queries are
//! strongly minimal (so that the cheaper NP check of Theorem 4.7 applies),
//! and then demonstrates the reuse concretely: the workload is evaluated in
//! one round under a single Hypercube distribution chosen for the "anchor"
//! query, and the answers are compared with the centralized results.
//!
//! Run with: `cargo run --release --example multi_query_workload`

use pcq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct WorkloadQuery {
    name: &'static str,
    query: ConjunctiveQuery,
}

fn workload() -> Vec<WorkloadQuery> {
    let q = |text: &str| ConjunctiveQuery::parse(text).unwrap();
    vec![
        WorkloadQuery {
            name: "friends-of-friends",
            query: q("FoF(x, z) :- Knows(x, y), Knows(y, z)."),
        },
        WorkloadQuery {
            name: "mutual-follow",
            query: q("Mutual(x, y) :- Knows(x, y), Knows(y, x)."),
        },
        WorkloadQuery {
            name: "self-follower",
            query: q("Selfie(x) :- Knows(x, x)."),
        },
        WorkloadQuery {
            name: "triangle",
            query: q("Tri(x, y, z) :- Knows(x, y), Knows(y, z), Knows(z, x)."),
        },
        WorkloadQuery {
            name: "fof-with-loop",
            query: q("Anchored(x, z) :- Knows(x, y), Knows(y, z), Knows(x, x)."),
        },
    ]
}

fn main() {
    let queries = workload();

    println!("workload queries:");
    for wq in &queries {
        println!(
            "  {:<20} {}  [strongly minimal: {}]",
            wq.name,
            wq.query,
            is_strongly_minimal(&wq.query)
        );
    }

    // ------------------------------------------------------ transfer matrix
    // transfer[i][j] = does parallel-correctness transfer from query i to j?
    println!("\ntransfer matrix (row = from, column = to):");
    print!("{:<20}", "");
    for wq in &queries {
        print!("{:<20}", wq.name);
    }
    println!();
    let mut matrix = vec![vec![false; queries.len()]; queries.len()];
    for (i, from) in queries.iter().enumerate() {
        print!("{:<20}", from.name);
        for (j, to) in queries.iter().enumerate() {
            // Use the cheaper C3-based check when the source is strongly
            // minimal (Theorem 4.7), the general C2-based check otherwise.
            let transfers = if is_strongly_minimal(&from.query) {
                check_transfer_strongly_minimal(&from.query, &to.query).transfers()
            } else {
                check_transfer(&from.query, &to.query).transfers()
            };
            matrix[i][j] = transfers;
            print!("{:<20}", if transfers { "yes" } else { "-" });
        }
        println!();
    }

    // Pick the anchor query that covers the largest part of the workload.
    let (anchor_idx, covered) = (0..queries.len())
        .map(|i| (i, matrix[i].iter().filter(|&&t| t).count()))
        .max_by_key(|&(_, c)| c)
        .unwrap();
    let anchor = &queries[anchor_idx];
    println!(
        "\nanchor query: {} (its distributions can be reused for {} of {} queries)",
        anchor.name,
        covered,
        queries.len()
    );

    // --------------------------------------------- one distribution, reused
    let mut rng = StdRng::seed_from_u64(7);
    let data = workloads::random_instance(
        &mut rng,
        &Schema::from_relations([("Knows", 2)]),
        InstanceParams {
            domain_size: 25,
            facts_per_relation: 250,
        },
    );
    let policy = HypercubePolicy::uniform(&anchor.query, 3).expect("policy");
    println!(
        "\nevaluating the workload under the {}-node Hypercube distribution of '{}':",
        policy.network().len(),
        anchor.name
    );
    let engine = OneRoundEngine::new(&policy).parallel(true);
    for (j, wq) in queries.iter().enumerate() {
        let outcome = engine.evaluate(&wq.query, &data);
        let expected = evaluate(&wq.query, &data);
        let correct = outcome.result == expected;
        println!(
            "  {:<20} answers={:<6} one-round correct: {:<5} (transfer predicted: {})",
            wq.name,
            expected.len(),
            correct,
            matrix[anchor_idx][j]
        );
        // Transferability is sound: whenever it predicts reuse, the one-round
        // result must be correct (the converse need not hold on a particular
        // instance).
        if matrix[anchor_idx][j] {
            assert!(correct, "transferability must guarantee correctness");
        }
    }

    // ------------------------------------------------------ family analysis
    println!("\nqueries parallel-correct for the anchor's whole Hypercube family (C3):");
    for wq in &queries {
        let ok = hypercube_parallel_correct(&anchor.query, &wq.query).parallel_correct;
        println!("  {:<20} {}", wq.name, ok);
    }
}
