//! The complexity landscape of the paper, exercised end-to-end.
//!
//! The paper's lower bounds reduce Π₂-QBF, Π₃-QBF, 3-SAT and graph
//! 3-colorability to the decision problems around parallel-correctness. This
//! example generates random source instances, runs both the source-side
//! oracle (QBF/SAT/coloring solver) and the target-side decision procedure
//! (parallel-correctness, transferability, strong minimality, condition C3),
//! and reports agreement together with the instance sizes produced by each
//! reduction — a miniature version of the cross-validation tables in
//! EXPERIMENTS.md.
//!
//! Run with: `cargo run --release --example hardness_landscape`

use pcq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reductions::{
    pi2_to_pci, pi3_to_transfer, sat_to_strong_minimality, three_col_to_c3_acyclic_q, Graph,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(2015);

    // ------------------------------------------------------------ Π₂ → PC
    println!("Π₂-QBF  →  PC(Pfin)   (Theorem 3.8, Propositions B.7/B.8)");
    println!(
        "{:>4} {:>8} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "#", "ϕ true?", "body atoms", "instance", "PCI", "PC", "agree"
    );
    for i in 0..5 {
        let qbf = logic::random_pi2_qbf(&mut rng, 2, 2, 3);
        let expected = qbf.is_true();
        let red = pi2_to_pci(&qbf);
        let pci = check_parallel_correctness_on_instance(&red.query, &red.policy, &red.instance)
            .is_correct();
        let pc = check_parallel_correctness(&red.query, &red.policy).is_correct();
        println!(
            "{:>4} {:>8} {:>10} {:>10} {:>8} {:>8} {:>8}",
            i,
            expected,
            red.query.body_size(),
            red.instance.len(),
            pci,
            pc,
            pci == expected && pc == expected
        );
    }

    // ------------------------------------------------------ Π₃ → transfer
    println!("\nΠ₃-QBF  →  pc-trans   (Theorem 4.3, Proposition C.6)");
    println!(
        "{:>4} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "#", "ϕ true?", "|body Q|", "|body Q'|", "transfers", "agree"
    );
    for i in 0..3 {
        let qbf = logic::random_pi3_qbf(&mut rng, 1, 1, 1, 1);
        let expected = qbf.is_true();
        let red = pi3_to_transfer(&qbf);
        let transfers = check_transfer(&red.from, &red.to).transfers();
        println!(
            "{:>4} {:>8} {:>10} {:>10} {:>10} {:>8}",
            i,
            expected,
            red.from.body_size(),
            red.to.body_size(),
            transfers,
            transfers == expected
        );
    }

    // --------------------------------------------- 3-SAT → strong minimality
    println!("\n3-SAT   →  ¬strongly-minimal   (Lemma 4.10 / C.9)");
    println!(
        "{:>4} {:>6} {:>10} {:>18} {:>8}",
        "#", "SAT?", "body atoms", "strongly minimal", "agree"
    );
    for i in 0..4 {
        let cnf = logic::random_3cnf(&mut rng, 2, 3);
        let sat = logic::dpll_satisfiable(&cnf);
        let query = sat_to_strong_minimality(&cnf);
        let strongly_minimal = is_strongly_minimal(&query);
        println!(
            "{:>4} {:>6} {:>10} {:>18} {:>8}",
            i,
            sat,
            query.body_size(),
            strongly_minimal,
            sat != strongly_minimal
        );
    }

    // ------------------------------------------------- 3-colorability → C3
    println!("\n3-COL   →  condition (C3)   (Propositions 5.4 / D.1)");
    println!(
        "{:>4} {:>8} {:>8} {:>12} {:>8} {:>8}",
        "#", "vertices", "edges", "3-colorable", "C3", "agree"
    );
    for (i, (n, p)) in [(4usize, 0.5), (5, 0.5), (5, 0.9), (6, 0.4)]
        .iter()
        .enumerate()
    {
        let graph = Graph::random(&mut rng, *n, *p);
        let colorable = graph.is_three_colorable();
        let red = three_col_to_c3_acyclic_q(&graph);
        let c3 = holds_c3(&red.from, &red.to);
        println!(
            "{:>4} {:>8} {:>8} {:>12} {:>8} {:>8}",
            i,
            n,
            graph.edges().len(),
            colorable,
            c3,
            c3 == colorable
        );
    }

    println!("\nAll four reductions agree with their source-side oracles.");
}
