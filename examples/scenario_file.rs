//! Scenario files end to end: author a scenario as text, round-trip it
//! through the pretty-printer and the binary codec, then run it through
//! the multi-round engine — over the in-memory transport here; swap in
//! `wire::ProcessTransport::spawn(n)` (or `pcq-analyze run --scenario
//! file.pcq --transport process`) for genuinely cross-process rounds.
//!
//! Run with: `cargo run --example scenario_file`

use pcq::prelude::*;

fn main() {
    // A scenario file: the transitive closure of a 5-edge chain by
    // repeated squaring, hash-partitioned in round 0, on a hypercube in
    // every later round.
    let text = "
        % transitive closure by repeated squaring
        query T(x, z) :- R(x, y), R(y, z).
        instance {
          R(v0, v1). R(v1, v2). R(v2, v3). R(v3, v4). R(v4, v5).
        }
        schedule hash(3), hypercube(2)
        rounds 8
        feedback R
    ";
    let scenario = Scenario::parse(text).expect("scenario parses");

    // The pretty-printer is the parser's exact inverse …
    let printed = scenario.to_string();
    assert_eq!(Scenario::parse(&printed).unwrap(), scenario);
    println!("--- canonical form ---\n{printed}");

    // … and the binary codec round-trips the same value inside one frame.
    let frame = pcq::wire::encode_frame(&scenario);
    assert_eq!(
        pcq::wire::decode_frame::<Scenario>(&frame).unwrap(),
        scenario
    );
    println!(
        "binary frame: {} bytes (text form: {} bytes)\n",
        frame.len(),
        printed.len()
    );

    // Build the schedule and run the scenario.
    let policies = scenario.build_schedule().expect("schedule builds");
    let refs: Vec<&dyn DistributionPolicy> = policies.iter().map(Box::as_ref).collect();
    let mut engine = MultiRoundEngine::new(RoundSchedule::of(refs)).rounds(scenario.rounds);
    if let Some(feedback) = scenario.feedback {
        engine = engine.feedback_into(feedback.as_str());
    }
    let outcome = engine.evaluate(scenario.query(), &scenario.instance);

    println!(
        "rounds run:  {} (converged: {})",
        outcome.rounds_run(),
        outcome.converged
    );
    println!("result size: {}", outcome.result.len());
    assert_eq!(
        outcome.result,
        engine
            .reference_fixpoint(scenario.query(), &scenario.instance)
            .result,
        "the distributed run matches the centralized fixpoint"
    );
    println!("matches the centralized global fixpoint ✓");
}
