//! Hypercube join evaluation on a simulated cluster.
//!
//! The motivating scenario of the paper's introduction: evaluate a multiway
//! join in a single communication round by reshuffling the data according to
//! a Hypercube distribution and evaluating the query locally at every node.
//!
//! The example evaluates the triangle query over random and skewed edge
//! relations for several cluster sizes, reports communication volume, maximum
//! node load and replication, and verifies parallel-correctness against the
//! centralized evaluation (Lemma 5.7 / Corollary 5.8 guarantee it).
//!
//! Run with: `cargo run --release --example hypercube_cluster`

use pcq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn edge_schema() -> Schema {
    Schema::from_relations([("E", 2)])
}

fn print_header() {
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>10} {:>12} {:>10}",
        "workload", "buckets", "nodes", "comm(facts)", "max load", "replication", "correct"
    );
}

fn run(workload: &str, instance: &Instance, query: &ConjunctiveQuery, buckets: usize) {
    let policy = HypercubePolicy::uniform(query, buckets).expect("policy");
    let engine = OneRoundEngine::new(&policy).parallel(true);
    let outcome = engine.evaluate(query, instance);
    let correct = outcome.result == evaluate(query, instance);
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>10} {:>12.2} {:>10}",
        workload,
        buckets,
        policy.network().len(),
        outcome.stats.total_assigned,
        outcome.stats.max_load,
        outcome.stats.replication_factor,
        correct
    );
}

fn main() {
    let query = triangle_query();
    println!("query: {query}\n");

    let mut rng = StdRng::seed_from_u64(20150531);
    let uniform = workloads::random_instance(
        &mut rng,
        &edge_schema(),
        InstanceParams {
            domain_size: 40,
            facts_per_relation: 600,
        },
    );
    let skewed = workloads::zipf_instance(
        &mut rng,
        &edge_schema(),
        InstanceParams {
            domain_size: 40,
            facts_per_relation: 600,
        },
        1.2,
    );

    println!(
        "uniform instance: {} facts over {} values",
        uniform.len(),
        uniform.adom().len()
    );
    println!(
        "skewed instance:  {} facts over {} values (Zipf exponent 1.2)\n",
        skewed.len(),
        skewed.adom().len()
    );

    print_header();
    for buckets in [1usize, 2, 3, 4] {
        run("uniform", &uniform, &query, buckets);
    }
    for buckets in [1usize, 2, 3, 4] {
        run("skewed", &skewed, &query, buckets);
    }

    // The family-level statement (Corollary 5.8): the triangle query is
    // parallel-correct for every member of its own Hypercube family, and the
    // structural validation of Lemma 5.7 passes on a concrete instance.
    let small =
        parse_instance("E(a, b). E(b, c). E(c, a). E(a, d). E(d, a). E(b, d). E(d, c). E(c, c).")
            .unwrap();
    let validation = validate_hypercube_family(&query, &small, 3);
    println!("\nLemma 5.7 validation on a small instance:");
    println!("  members checked:         {}", validation.members_checked);
    println!("  Q-generous:              {}", validation.generous);
    println!("  Q-scattered:             {}", validation.scattered);
    println!(
        "  self parallel-correct:   {}",
        validation.self_parallel_correct
    );

    // Reusing the triangle distribution for other queries: which ones are
    // parallel-correct for the whole family?
    let candidates = [
        ("edge projection", "U(x, y) :- E(x, y)."),
        ("wedge", "U(x, z) :- E(x, y), E(y, z)."),
        ("self-loop", "U(x) :- E(x, x)."),
    ];
    println!("\nqueries parallel-correct for the triangle Hypercube family (C3):");
    for (name, text) in candidates {
        let q_prime = ConjunctiveQuery::parse(text).unwrap();
        let ok = hypercube_parallel_correct(&query, &q_prime).parallel_correct;
        println!("  {:<16} {:<40} -> {}", name, text, ok);
    }
}
