//! Quickstart: parallel-correctness of a conjunctive query under a
//! distribution policy.
//!
//! This example walks through the core notions of the paper on the query and
//! policy of Example 3.5:
//!
//! 1. define a conjunctive query and a finite distribution policy,
//! 2. check the sufficient condition (C0) and the exact characterization (C1),
//! 3. decide parallel-correctness and inspect the witness/counterexample,
//! 4. run the one-round evaluation on a concrete instance.
//!
//! Run with: `cargo run --example quickstart`

use pcq::prelude::*;

fn main() {
    // ---------------------------------------------------------------- query
    // Example 3.5 of the paper: T(x, z) :- R(x, y), R(y, z), R(x, x).
    let query = example_3_5_query();
    println!("query Q:            {query}");
    println!("  full:             {}", query.is_full());
    println!("  self-joins:       {}", query.has_self_joins());
    println!("  minimal:          {}", cq::is_minimal(&query));
    println!("  strongly minimal: {}", is_strongly_minimal(&query));

    // --------------------------------------------------------------- policy
    // Facts over the domain {a, b}. The policy of Example 3.5: node n0
    // receives every fact except R(a,b); node n1 every fact except R(b,a).
    let universe = workloads::complete_binary_relation("R", &["a", "b"]);
    let r_ab = Fact::from_names("R", &["a", "b"]);
    let r_ba = Fact::from_names("R", &["b", "a"]);

    let mut policy = ExplicitPolicy::new(Network::with_size(2));
    for fact in universe.facts() {
        let mut nodes = Vec::new();
        if *fact != r_ab {
            nodes.push(Node::numbered(0));
        }
        if *fact != r_ba {
            nodes.push(Node::numbered(1));
        }
        policy.assign(fact.clone(), nodes);
    }
    println!("\npolicy P over network {}", policy.network());
    for fact in universe.facts() {
        let nodes: Vec<String> = policy
            .nodes_for(fact)
            .iter()
            .map(|n| n.to_string())
            .collect();
        println!("  P({fact}) = {{{}}}", nodes.join(", "));
    }

    // ----------------------------------------------------- conditions C0/C1
    println!(
        "\ncondition (C0) holds: {}",
        holds_c0(&query, &policy, &universe)
    );
    println!(
        "condition (C1) holds: {}",
        holds_c1(&query, &policy, &universe)
    );

    // -------------------------------------------------- parallel-correctness
    let report = check_parallel_correctness(&query, &policy);
    println!("\nQ parallel-correct under P: {}", report.is_correct());

    // Compare with the plain path query, which is NOT parallel-correct under
    // the same policy: the valuation {x↦a, y↦b, z↦a} is minimal for it and
    // needs R(a,b) and R(b,a) at the same node.
    let path = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
    let path_report = check_parallel_correctness(&path, &policy);
    println!(
        "path query parallel-correct under P: {}",
        path_report.is_correct()
    );
    if let Some(violation) = &path_report.violation {
        println!("  violating minimal valuation: {}", violation.valuation);
        println!(
            "  counterexample instance:     {}",
            violation.counterexample_instance
        );
        println!("  lost fact:                   {}", violation.lost_fact);
    }

    // ------------------------------------------------- one-round evaluation
    let instance = parse_instance("R(a, a). R(a, b). R(b, a). R(b, b).").unwrap();
    let engine = OneRoundEngine::new(&policy);
    let outcome = engine.evaluate(&query, &instance);
    println!("\none-round evaluation of Q on {instance}");
    println!("  distributed result: {}", outcome.result);
    println!("  centralized result: {}", evaluate(&query, &instance));
    println!("  reshuffle stats:    {}", outcome.stats);
    assert_eq!(outcome.result, evaluate(&query, &instance));

    // ------------------------------------------------------- transferability
    // Can the distribution used for Q be reused for the path query?
    let transfer = check_transfer(&query, &path);
    println!(
        "\nparallel-correctness transfers from Q to the path query: {}",
        transfer.transfers()
    );
    let transfer_back = check_transfer(&path, &query);
    println!(
        "parallel-correctness transfers from the path query to Q: {}",
        transfer_back.transfers()
    );
}
